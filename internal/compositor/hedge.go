// Speculative tile hedging: masking slow-but-alive ranks in the pipelined
// executor without recovery epochs or evictions.
//
// The buddy-replication scheme of the Recover policy already places a copy
// of every rank's initial sub-image on a deterministic buddy. For a
// transfer whose content is a pure function of the sender's initial layer —
// no receives merged into the sender's tile before the sending step — that
// buddy can reconstruct the exact bytes the sender would put on the wire:
// stage the replica, replay the halvings up to the sending step, take the
// block, encode it with the run's codec. First-step transfers of every
// schedule are pure (and all of direct-send is), which is precisely where a
// browned-out rank stalls the whole pipeline behind it.
//
// When a waiting worker finds a pure transfer overdue by its hedge
// threshold, it sends a tiny request to the sender's buddy on a reserved
// hedge tag; the buddy answers with the reconstruction; the receiver merges
// whichever copy lands first and drops the loser (a delivered-set keyed by
// the original message identity makes the race idempotent). Output stays
// byte-identical to the synchronous oracle, the slow rank is never evicted,
// and a genuinely dead rank still falls through to the existing
// deadline/recovery machinery — hedging masks slowness, not death.
package compositor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"rtcomp/internal/bufpool"
	"rtcomp/internal/comm"
	"rtcomp/internal/fragstore"
	"rtcomp/internal/gray"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/traceid"
)

// Hedge tags live in the free bit-36 region of the tag space (step tags
// occupy bits 40+, the gather/credit regions bits 37-39), epoch-scoped like
// every other tag. Bit 35 distinguishes reply from request; the block
// coordinates are masked into the low bits (collisions would need schedules
// beyond 4096 steps, 1024 tiles or 32 halving levels).
const (
	tagHedgeBase = 1 << 36
	tagHedgeRepl = 1 << 35

	// tagHedgeReplica carries the up-front buddy replica exchange of a
	// hedged run outside the Recover policy ("HR"; the Recover policy's
	// own exchange uses tagReplica and is reused as-is).
	tagHedgeReplica = (1 << 39) + 0x4852
)

// hedgeTag addresses one hedge request (or its reply) for a block transfer.
func hedgeTag(epoch, si int, b schedule.Block, reply bool) int {
	t := epoch<<56 | tagHedgeBase |
		(si&0xFFF)<<23 | (b.Tile&0x3FF)<<13 | (b.Level&0x1F)<<8 | (b.Index & 0xFF)
	if reply {
		t |= tagHedgeRepl
	}
	return t
}

// errHedgeReq rejects a malformed hedge-request frame.
var errHedgeReq = errors.New("compositor: malformed hedge request")

// hedgeReqMax bounds every field of a hedge request: far above any real
// schedule, low enough that arithmetic on the decoded values cannot
// overflow.
const hedgeReqMax = 1 << 30

// encodeHedgeReq frames a hedge request: "HQ", then uvarint origin rank,
// step index, tile, level, index.
func encodeHedgeReq(origin, si int, b schedule.Block) []byte {
	buf := make([]byte, 0, 2+5*binary.MaxVarintLen32)
	buf = append(buf, 'H', 'Q')
	buf = binary.AppendUvarint(buf, uint64(origin))
	buf = binary.AppendUvarint(buf, uint64(si))
	buf = binary.AppendUvarint(buf, uint64(b.Tile))
	buf = binary.AppendUvarint(buf, uint64(b.Level))
	buf = binary.AppendUvarint(buf, uint64(b.Index))
	return buf
}

// decodeHedgeReq inverts encodeHedgeReq. It rejects trailing bytes and
// out-of-range fields; semantic validation against the schedule happens in
// buildHedgePayload.
func decodeHedgeReq(p []byte) (origin, si int, b schedule.Block, err error) {
	if len(p) < 2 || p[0] != 'H' || p[1] != 'Q' {
		return 0, 0, schedule.Block{}, errHedgeReq
	}
	rest := p[2:]
	var vals [5]uint64
	for i := range vals {
		v, n := binary.Uvarint(rest)
		if n <= 0 || v >= hedgeReqMax {
			return 0, 0, schedule.Block{}, errHedgeReq
		}
		vals[i] = v
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return 0, 0, schedule.Block{}, errHedgeReq
	}
	return int(vals[0]), int(vals[1]),
		schedule.Block{Tile: int(vals[2]), Level: int(vals[3]), Index: int(vals[4])}, nil
}

// planPure reports whether a rank's per-tile plan merges nothing before
// step si: its blocks at si are then a pure function of the initial layer
// (halvings only), so a buddy holding the layer replica can reconstruct any
// of them byte-identically. Sends at earlier steps only remove other
// blocks; receives at si itself merge after the step's sends are taken.
func planPure(plan []tileStep, si int) bool {
	for i := range plan {
		if plan[i].step >= si {
			break
		}
		if len(plan[i].recvs) > 0 {
			return false
		}
	}
	return true
}

// classOfTag maps a received tag to the estimator class its latency feeds:
// scheduled block transfers (step index in bits 40+) are ClassStep, the
// progressive-gather tiles and credits are ClassGather, and everything else
// — notices, hedge traffic, replicas — is not observed.
func classOfTag(tag int) (gray.Class, bool) {
	if tag < 0 {
		return 0, false
	}
	if (tag>>40)&0xFFFF != 0 {
		return gray.ClassStep, true
	}
	if tag&(tagTileGatherBase|tagCreditBase) != 0 && tag&((1<<39)|tagHedgeBase) == 0 {
		return gray.ClassGather, true
	}
	return 0, false
}

// hedgeJob is one inbound hedge request queued for the serving goroutine.
type hedgeJob struct {
	from    int
	payload []byte
}

// initHedge wires hedging into a pipeRun being built: the dedup state, the
// per-rank plan cache for purity checks and reconstruction, and the
// select-only expect entries for replies we may receive and requests our
// wards' receivers may send us. Replicas attach later (recovery hand-off or
// the up-front exchange) — serving simply declines while they are absent.
func (pr *pipeRun) initHedge() {
	p := pr.sched.P
	if p < 2 {
		return
	}
	pr.hedge = true
	pr.delivered = map[comm.MsgKey]bool{}
	pr.hedgedReq = map[comm.MsgKey]bool{}
	pr.planCache = map[int][][]tileStep{pr.me: pr.plans}

	// Replies: one per hedgeable receive whose serving buddy is remote
	// (a buddy that is this rank itself serves locally, no message).
	for t, plan := range pr.plans {
		for _, ts := range plan {
			for _, tr := range ts.recvs {
				if !pr.hedgeable(tr.From, ts.step, t) {
					continue
				}
				if b := schedule.Buddy(tr.From, p); b != pr.me {
					orig := comm.MsgKey{From: tr.From, Tag: tagFor(pr.epoch, ts.step, tr.Block)}
					pr.expect[comm.MsgKey{From: b, Tag: hedgeTag(pr.epoch, ts.step, tr.Block, true)}] =
						pipeExpect{kind: kHedgeRep, si: ts.step, tr: tr, orig: orig}
				}
			}
		}
	}

	// Requests: every pure send of every ward may be hedged by its
	// receiver. The channel is sized to the full request count so dispatch
	// never blocks the receiver pump.
	nreq := 0
	for _, ward := range schedule.Wards(pr.me, p) {
		wplans := pr.rankPlans(ward)
		for t, plan := range wplans {
			for _, ts := range plan {
				for _, tr := range ts.sends {
					if tr.To == pr.me || !planPure(wplans[t], ts.step) {
						continue
					}
					pr.expect[comm.MsgKey{From: tr.To, Tag: hedgeTag(pr.epoch, ts.step, tr.Block, false)}] =
						pipeExpect{kind: kHedgeReq}
					nreq++
				}
			}
		}
	}
	if nreq > 0 {
		pr.hedgeCh = make(chan hedgeJob, nreq)
		pr.hedgeDone = make(chan struct{})
	}
}

// rankPlans returns (caching) another rank's per-tile plans. The cache is
// filled single-threaded in initHedge for every rank hedging can touch
// (senders of our receives, our wards); runtime lookups are read-only.
func (pr *pipeRun) rankPlans(r int) [][]tileStep {
	if plans, ok := pr.planCache[r]; ok {
		return plans
	}
	plans := tilePlans(pr.sched, r)
	pr.planCache[r] = plans
	return plans
}

// hedgeable reports whether a transfer from a rank at a step is worth
// hedging: its content must be reconstructable from the sender's replica
// (purity), and the sender must have a buddy other than itself.
func (pr *pipeRun) hedgeable(from, si, tile int) bool {
	if schedule.Buddy(from, pr.sched.P) == from {
		return false
	}
	return planPure(pr.rankPlans(from)[tile], si)
}

// hedgeDelay resolves how long the given step's pending transfers may be
// overdue before hedging: the configured threshold, else the adaptive
// estimator's tightest opinion across the pending peers, else the default.
func (pr *pipeRun) hedgeDelay(pending map[comm.MsgKey]schedule.Transfer) time.Duration {
	if d := pr.opts.Pipeline.Hedge.Threshold; d > 0 {
		return d
	}
	best := time.Duration(0)
	for _, tr := range pending {
		if d := pr.est.HedgeDelay(gray.ClassStep, tr.From); d > 0 && (best == 0 || d < best) {
			best = d
		}
	}
	if best > 0 {
		return best
	}
	return DefaultHedgeThreshold
}

// issueHedges fires one hedge round for a step's still-pending hedgeable
// transfers: mark each as requested (once per run), then either ask the
// sender's buddy on the hedge tag or, when this rank is the buddy,
// reconstruct from the local replica directly. Requests are best-effort —
// a failed send or an unanswerable request just leaves the original path
// in charge.
func (pr *pipeRun) issueHedges(si, tile int, pending map[comm.MsgKey]schedule.Transfer) {
	for k, tr := range pending {
		pr.hedgeMu.Lock()
		skip := pr.delivered[k] || pr.hedgedReq[k]
		if !skip {
			pr.hedgedReq[k] = true
		}
		pr.hedgeMu.Unlock()
		if skip {
			continue
		}
		pr.tel.Add(pr.me, telemetry.CtrHedgeRequests, 1)
		pr.tel.Flight(pr.me, telemetry.FlightHedge, si, tile, tr.From, "overdue; hedging")
		if b := schedule.Buddy(tr.From, pr.sched.P); b != pr.me {
			_ = comm.SendCtx(pr.c, b, hedgeTag(pr.epoch, si, tr.Block, false),
				encodeHedgeReq(tr.From, si, tr.Block),
				traceid.Context{Step: si, Tile: tr.Block.Tile, Epoch: pr.epoch})
		} else if payload, ok := pr.buildHedgePayload(tr.From, si, tr.Block); ok {
			pr.tel.Add(pr.me, telemetry.CtrHedgeServed, 1)
			pr.deliverHedge(k, si, tr, payload)
		}
	}
}

// deliverHedge races a reconstructed payload against the original under the
// delivered-set: first copy in wins and feeds the tile, the loser recycles.
func (pr *pipeRun) deliverHedge(orig comm.MsgKey, si int, tr schedule.Transfer, payload []byte) {
	pr.hedgeMu.Lock()
	dup := pr.delivered[orig]
	if !dup {
		pr.delivered[orig] = true
	}
	pr.hedgeMu.Unlock()
	if dup {
		bufpool.Put(payload)
		pr.tel.Add(pr.me, telemetry.CtrHedgeWasted, 1)
		return
	}
	pr.tel.Add(pr.me, telemetry.CtrHedgeWins, 1)
	pr.health.HedgeWon(tr.From)
	pr.tel.Flight(pr.me, telemetry.FlightHedge, si, tr.Block.Tile, tr.From, "hedge won")
	pr.tileCh[tr.Block.Tile] <- tileMsg{si: si, tr: tr, payload: payload}
}

// buildHedgePayload reconstructs the exact wire payload the origin rank
// would send for a block at a step, from its replica: stage the replica's
// tile, replay the halvings up to the sending step, take the block, encode.
// Purity guarantees byte-identity — nothing was ever merged into the
// origin's tile before this step, and halvings are per-block. Reports false
// when the request cannot be served (no replica, impure, out of range).
func (pr *pipeRun) buildHedgePayload(origin, si int, b schedule.Block) ([]byte, bool) {
	if origin < 0 || origin >= pr.sched.P || si < 0 || si >= len(pr.sched.Steps) ||
		b.Tile < 0 || b.Tile >= pr.sched.Tiles {
		return nil, false
	}
	replica := pr.replicas[origin]
	if replica == nil {
		return nil, false
	}
	plans := pr.planCache[origin]
	if plans == nil || !planPure(plans[b.Tile], si) {
		return nil, false
	}
	st := fragstore.NewTile(origin, pr.sched, replica, b.Tile)
	defer st.Release()
	for i := range plans[b.Tile] {
		ts := &plans[b.Tile][i]
		if ts.step > si {
			break
		}
		for h := 0; h < ts.pre; h++ {
			st.HalveAll()
		}
		if ts.step == si {
			break
		}
		for h := 0; h < ts.post; h++ {
			st.HalveAll()
		}
	}
	frags, err := st.Take(b)
	if err != nil {
		return nil, false
	}
	payload, _, _ := EncodeFragments(frags, pr.cdc)
	fragstore.ReleaseAll(frags)
	return payload, true
}

// hedgeServer drains inbound hedge requests and answers each with the
// reconstruction, best-effort: an unanswerable request (bad frame, missing
// replica, impure) is simply dropped — the requester's original path and
// deadline machinery remain in charge.
func (pr *pipeRun) hedgeServer() {
	defer close(pr.hedgeDone)
	for job := range pr.hedgeCh {
		origin, si, b, err := decodeHedgeReq(job.payload)
		bufpool.Put(job.payload)
		if err != nil || pr.cancelled() {
			continue
		}
		payload, ok := pr.buildHedgePayload(origin, si, b)
		if !ok {
			continue
		}
		pr.tel.Add(pr.me, telemetry.CtrHedgeServed, 1)
		pr.tel.Flight(pr.me, telemetry.FlightHedge, si, b.Tile, job.from, "replica served")
		_ = comm.SendCtx(pr.c, job.from, hedgeTag(pr.epoch, si, b, true), payload,
			traceid.Context{Step: si, Tile: b.Tile, Epoch: pr.epoch})
	}
}

// exchangeHedgeReplicas is the up-front buddy replica exchange of a hedged
// run outside the Recover policy (which already holds replicas). It runs
// before the receiver starts, on its own tag, and is best-effort: a ward
// whose replica never arrives is simply unhedgeable, and its late frame is
// registered as stale so it cannot fail the receiver as unexpected.
func (pr *pipeRun) exchangeHedgeReplicas() error {
	p := pr.sched.P
	buddy := schedule.Buddy(pr.me, p)
	wards := schedule.Wards(pr.me, p)
	if buddy == pr.me && len(wards) == 0 {
		return nil
	}
	if src := pr.opts.Pipeline.Source; src != nil {
		// The replica must be the final local sub-image; hedging trades
		// render overlap for it, exactly like the Recover policy.
		for t, span := range pr.spans {
			if err := src.WaitTile(t, span); err != nil {
				return fmt.Errorf("compositor: tile %d render: %w", t, err)
			}
		}
	}
	end := pr.tel.Span(pr.me, telemetry.PhaseReplicate, telemetry.CatNetwork, telemetry.StepNone)
	defer end()
	if buddy != pr.me {
		frame := encodeReplica(pr.local, pr.cdc)
		pr.tel.Add(pr.me, telemetry.CtrReplicaMsgs, 1)
		pr.tel.Add(pr.me, telemetry.CtrReplicaRawBytes, int64(len(pr.local.Pix)))
		pr.tel.Add(pr.me, telemetry.CtrReplicaWireBytes, int64(len(frame)))
		// Best-effort: a failed send only costs the buddy its ability to
		// hedge for us.
		_ = pr.c.Send(buddy, tagHedgeReplica, frame)
	}
	pr.replicas = map[int]*raster.Image{}
	timeout := pr.opts.RecvTimeout
	if timeout <= 0 || timeout > 5*time.Second {
		timeout = 5 * time.Second
	}
	deadline := time.Now().Add(timeout)
	need := map[int]bool{}
	var keys []comm.MsgKey
	for _, w := range wards {
		need[w] = true
		keys = append(keys, comm.MsgKey{From: w, Tag: tagHedgeReplica})
	}
	for len(need) > 0 {
		remain := time.Until(deadline)
		if remain <= 0 {
			break
		}
		from, _, payload, err := pr.c.RecvAnyTimeout(keys, remain)
		if err != nil {
			break // deadline or peer failure: hedge-degraded, never fatal
		}
		img, derr := decodeReplica(payload, pr.cdc, pr.local.W, pr.local.H)
		bufpool.Put(payload)
		if derr == nil && need[from] {
			delete(need, from)
			for i, k := range keys {
				if k.From == from {
					keys = append(keys[:i], keys[i+1:]...)
					break
				}
			}
			pr.replicas[from] = img
		}
	}
	for w := range need {
		pr.expect[comm.MsgKey{From: w, Tag: tagHedgeReplica}] = pipeExpect{kind: kStale}
	}
	return nil
}
