// The message-driven per-tile pipelined executor behind Options.Pipeline.
//
// Where the synchronous step loop (runOnce) finishes step k on every rank
// before any rank starts k+1, the pipelined executor advances every tile
// through stage→send→recv→merge→gather as its own state machine:
//
//   - A bounded worker pool (the in-flight window) claims tiles from an
//     atomic counter, so all ranks claim tiles in the same increasing
//     order. That shared order is the liveness invariant: the minimal
//     unfinished tile is claimed (or done) on every rank, its restricted
//     sub-schedule is exactly the synchronous schedule of that tile, and
//     eager-send buffering completes it — so any window >= 1 makes
//     progress and the pipeline cannot deadlock.
//   - A single receiver goroutine owns every Recv of the run. The full
//     expected message set is known up front (the schedule's transfers,
//     the progressive-gather contributions, the flow-control credits, the
//     recovery notices), so the receiver posts one arrival-order receive
//     over all of it and dispatches payloads to per-tile channels sized
//     for their full message count — dispatch never blocks the pump.
//   - Completed tiles stream to the gather root immediately, throttled by
//     a credit window; the root's assembler inserts them into the final
//     frame as they land and fires the progressive-delivery callback the
//     moment a tile's last contribution arrives.
//
// Sends go through a shared mutex (encode stays parallel in the workers;
// only the fabric hand-off is serialized), and messages carry the same
// epoch-scoped tags as the synchronous path, so the per-tile interleaving
// changes nothing about what is sent — only when. The differential tests
// exploit exactly that: pipelined output must be byte-identical to the
// synchronous oracle under any delivery order.
package compositor

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rtcomp/internal/bufpool"
	"rtcomp/internal/codec"
	"rtcomp/internal/comm"
	"rtcomp/internal/fragstore"
	"rtcomp/internal/gray"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/traceid"
)

// pipePollChunk bounds one blocking receive of the pipelined receiver, so
// it can observe cancellation and accumulate the configured RecvTimeout as
// silence across chunks without a fabric-level interrupt.
const pipePollChunk = 20 * time.Millisecond

// errPipeStop is the internal worker stop signal: the real cause (fatal
// error or recovery abort) is already recorded on the run.
var errPipeStop = errors.New("compositor: pipeline stopped")

// Tile states for the stall dump, advanced by the owning worker.
const (
	stateUnclaimed  int32 = 0
	stateRenderWait int32 = 1
	stateStepBase   int32 = 2 // + 0-based step index
)

// pipeKind classifies one expected message for dispatch.
type pipeKind int8

const (
	kStep     pipeKind = iota // a scheduled block transfer
	kGather                   // a completed tile's final blocks (root only)
	kCredit                   // a progressive-gather credit (non-root only)
	kNotice                   // a recovery FAILED notice
	kHedgeReq                 // a ward's receiver asking for a replica reconstruction
	kHedgeRep                 // a buddy's reconstruction of an overdue transfer
	kStale                    // a late frame to swallow, never to wait for
)

// substantive reports whether the receiver must wait for a message of this
// kind before exiting. Notices may never come; hedge traffic only exists
// when something is overdue; stale frames are consumed if they arrive.
func (k pipeKind) substantive() bool {
	return k == kStep || k == kGather || k == kCredit
}

// pipeExpect is the dispatch record of one expected message.
type pipeExpect struct {
	kind pipeKind
	si   int // step index (kStep) or tile index (kGather)
	tr   schedule.Transfer
	orig comm.MsgKey // kHedgeRep: the original transfer's key, for dedup
}

// tileMsg is one delivery to a tile's state machine. A nil payload marks a
// transfer the receiver declared lost (deadline or dead peer) under the
// compose-partial policy.
type tileMsg struct {
	si      int
	tr      schedule.Transfer
	payload []byte
}

// asmMsg is one contribution to the root's frame assembler: a remote
// gather payload, the root's own completed tile store, or a missing-gather
// notice from the receiver.
type asmMsg struct {
	from    int
	tile    int
	payload []byte
	st      *fragstore.Store
	missing bool
}

// lockedComm serializes Send across the pipelined executor's goroutines
// (workers, assembler, abort notices) without auditing every fabric for
// concurrent-send safety. Receives pass through unlocked — the receiver is
// a single goroutine and must not block senders while it waits.
type lockedComm struct {
	comm.Comm
	mu sync.Mutex
}

func (lc *lockedComm) Send(to, tag int, payload []byte) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.Comm.Send(to, tag, payload)
}

// SendCtx forwards the trace context to the wrapped fabric under the same
// send lock, so causal tracing survives the serialization wrapper.
func (lc *lockedComm) SendCtx(to, tag int, payload []byte, tc traceid.Context) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return comm.SendCtx(lc.Comm, to, tag, payload, tc)
}

// pipeWorker is one worker goroutine's private state: its own scratch and
// its own report shard, merged into the shared report when it exits.
type pipeWorker struct {
	scr *runScratch
	rep Report
}

// pipeRun is the shared state of one pipelined composition epoch.
type pipeRun struct {
	c     comm.Comm // lockedComm over the caller's fabric
	sched *schedule.Schedule
	local *raster.Image
	opts  Options
	cdc   codec.Codec
	tel   *telemetry.Recorder
	rep   *Report // receiver/assembler mutate under mu; workers merge shards
	me    int
	root  int
	epoch int
	recov *rexec // non-nil: epoch-0 attempt under the Recover policy

	plans        [][]tileStep
	spans        []raster.Span
	expected     []int // per tile: gather contributions the root awaits
	expectedFrom []int // per rank: gather messages the root awaits from it
	gatherSends  int   // this rank's progressive gather sends (non-root)
	window       int

	nextTile    atomic.Int64
	inFlight    atomic.Int64
	maxInFlight atomic.Int64
	states      []atomic.Int32
	stepOnce    []sync.Once

	tileCh  []chan tileMsg
	asmCh   chan asmMsg
	credits chan struct{}

	cancel     chan struct{}
	cancelOnce sync.Once
	abortOnce  sync.Once
	recvDone   chan struct{}
	asmDone    chan struct{}

	expMu  sync.Mutex
	expect map[comm.MsgKey]pipeExpect

	// Gray-failure machinery: the adaptive deadline estimator and peer
	// health scores (both optional), and the hedging state — the dedup sets
	// keyed by the original transfer's message identity, the per-rank plan
	// cache for purity checks and reconstruction, the ward replicas, and
	// the request-serving channel. See hedge.go.
	est       *gray.Estimator
	health    *gray.Health
	hedge     bool
	hedgeMu   sync.Mutex
	delivered map[comm.MsgKey]bool
	hedgedReq map[comm.MsgKey]bool
	planCache map[int][][]tileStep
	replicas  map[int]*raster.Image
	hedgeCh   chan hedgeJob
	hedgeDone chan struct{}

	partials *partialPump

	mu      sync.Mutex
	err     error
	aborted bool
	final   *raster.Image

	sawMissing atomic.Bool
	workerWG   sync.WaitGroup

	t0 time.Time // run start; OnPartial delivery latency is measured from it
}

// newPipeRun builds the run state: per-tile plans, the gather expectation
// tables from a block-flow simulation of the schedule, the dispatch map of
// every message this rank will receive, and the flow-control channels.
func newPipeRun(c comm.Comm, sched *schedule.Schedule, local *raster.Image, opts Options,
	cdc codec.Codec, rep *Report, recov *rexec) (*pipeRun, error) {
	holders, err := finalTileHolders(sched)
	if err != nil {
		return nil, err
	}
	me := c.Rank()
	epoch := 0
	if recov != nil {
		epoch = recov.mem.Epoch()
	}
	pr := &pipeRun{
		c:        &lockedComm{Comm: c},
		sched:    sched,
		local:    local,
		opts:     opts,
		cdc:      cdc,
		tel:      opts.Telemetry,
		rep:      rep,
		me:       me,
		root:     opts.GatherRoot,
		epoch:    epoch,
		recov:    recov,
		est:      opts.Adaptive,
		health:   opts.Health,
		plans:    tilePlans(sched, me),
		spans:    sched.TileSpans(local.NPixels()),
		window:   opts.Pipeline.window(sched.Tiles),
		states:   make([]atomic.Int32, sched.Tiles),
		stepOnce: make([]sync.Once, len(sched.Steps)),
		cancel:   make(chan struct{}),
		recvDone: make(chan struct{}),
		asmDone:  make(chan struct{}),
		expect:   map[comm.MsgKey]pipeExpect{},
	}

	pr.tileCh = make([]chan tileMsg, sched.Tiles)
	for t := range pr.tileCh {
		n := 0
		for _, ts := range pr.plans[t] {
			n += len(ts.recvs)
			for _, tr := range ts.recvs {
				pr.expect[comm.MsgKey{From: tr.From, Tag: tagFor(epoch, ts.step, tr.Block)}] =
					pipeExpect{kind: kStep, si: ts.step, tr: tr}
			}
		}
		pr.tileCh[t] = make(chan tileMsg, n)
	}

	if pr.root >= 0 {
		if me == pr.root {
			pr.expected = make([]int, sched.Tiles)
			pr.expectedFrom = make([]int, sched.P)
			total := 0
			for t, hs := range holders {
				pr.expected[t] = len(hs)
				total += len(hs)
				for _, r := range hs {
					if r != me {
						pr.expectedFrom[r]++
						pr.expect[comm.MsgKey{From: r, Tag: tileGatherTag(epoch, t)}] =
							pipeExpect{kind: kGather, si: t}
					}
				}
			}
			pr.asmCh = make(chan asmMsg, total)
		} else {
			for _, hs := range holders {
				for _, r := range hs {
					if r == me {
						pr.gatherSends++
					}
				}
			}
			pr.credits = make(chan struct{}, pr.gatherSends+1)
			prefill := opts.Pipeline.gatherWindow(pr.gatherSends)
			if prefill > pr.gatherSends {
				prefill = pr.gatherSends
			}
			for i := 0; i < prefill; i++ {
				pr.credits <- struct{}{}
			}
			for seq := 0; seq < pr.gatherSends-prefill; seq++ {
				pr.expect[comm.MsgKey{From: pr.root, Tag: creditTag(epoch, seq)}] =
					pipeExpect{kind: kCredit}
			}
		}
	}
	if recov != nil {
		for _, k := range recov.mem.NoticeKeys(me) {
			pr.expect[k] = pipeExpect{kind: kNotice}
		}
	}
	if opts.Pipeline.Hedge.Enabled {
		pr.initHedge()
	}
	if pr.root >= 0 && me == pr.root {
		pr.partials = newPartialPump(opts.Pipeline, sched.Tiles, pr.tel, me)
	}
	return pr, nil
}

// run executes the pipeline: receiver, assembler (root) and the worker
// window, then joins everything — including after a failure or recovery
// abort, so the in-flight window is fully drained before the caller moves
// on (the recovery barrier depends on this quiescence).
func (pr *pipeRun) run() {
	pr.t0 = time.Now()
	go pr.receiver()
	if pr.hedgeCh != nil {
		go pr.hedgeServer()
	}
	if pr.root >= 0 && pr.me == pr.root {
		go pr.assembler()
	} else {
		close(pr.asmDone)
	}
	for i := 0; i < pr.window; i++ {
		pr.workerWG.Add(1)
		go pr.workerLoop()
	}
	pr.workerWG.Wait()
	<-pr.recvDone
	if pr.hedgeCh != nil {
		// The receiver is the only producer; with it gone the serving
		// queue can drain and close.
		close(pr.hedgeCh)
		<-pr.hedgeDone
	}
	<-pr.asmDone
}

// stop cancels every goroutine of the run (idempotent).
func (pr *pipeRun) stop() {
	pr.cancelOnce.Do(func() { close(pr.cancel) })
}

func (pr *pipeRun) cancelled() bool {
	select {
	case <-pr.cancel:
		return true
	default:
		return false
	}
}

// fail records the first fatal error and cancels the run. It returns
// errPipeStop so workers can `return pr.fail(err)`.
func (pr *pipeRun) fail(err error) error {
	pr.mu.Lock()
	if pr.err == nil {
		pr.err = err
	}
	pr.mu.Unlock()
	pr.stop()
	return errPipeStop
}

func (pr *pipeRun) failf(format string, args ...any) error {
	return pr.fail(fmt.Errorf(format, args...))
}

// abortAttempt abandons a Recover-policy attempt: broadcast this epoch's
// FAILED notice (unless a peer's notice is what triggered the abort), mark
// the run aborted and cancel it. The caller's join then drains the
// in-flight window before the membership agreement runs.
func (pr *pipeRun) abortAttempt(suspects []int, broadcast bool) {
	pr.abortOnce.Do(func() {
		rx := pr.recov
		if broadcast && rx != nil && !rx.noticeSent {
			rx.noticeSent = true
			comm.BroadcastFailure(pr.c, rx.mem, suspects)
			pr.tel.Add(pr.me, telemetry.CtrFailNotices, 1)
		}
		pr.tel.Flight(pr.me, telemetry.FlightEpoch, telemetry.StepNone, -1, -1, "attempt aborted")
		pr.mu.Lock()
		pr.aborted = true
		pr.mu.Unlock()
	})
	pr.stop()
}

// fireOnStep invokes the chaos seam the first time any tile enters a step.
// Each worker passes steps in order within its tile, so first entries are
// still monotone across the run.
func (pr *pipeRun) fireOnStep(si int) {
	if pr.opts.OnStep == nil {
		return
	}
	pr.stepOnce[si].Do(func() { pr.opts.OnStep(si) })
}

// workerLoop claims tiles in the globally shared increasing order and runs
// each through its full state machine. The claim order is load-bearing:
// see the package comment's liveness argument.
func (pr *pipeRun) workerLoop() {
	defer pr.workerWG.Done()
	w := &pipeWorker{scr: newRunScratch(), rep: Report{Rank: pr.me}}
	defer w.scr.release()
	defer pr.mergeWorkerReport(&w.rep)
	for {
		t := int(pr.nextTile.Add(1)) - 1
		if t >= pr.sched.Tiles || pr.cancelled() {
			return
		}
		n := pr.inFlight.Add(1)
		for {
			m := pr.maxInFlight.Load()
			if n <= m || pr.maxInFlight.CompareAndSwap(m, n) {
				break
			}
		}
		err := pr.runTile(w, t)
		pr.inFlight.Add(-1)
		if err != nil {
			return
		}
	}
}

func (pr *pipeRun) mergeWorkerReport(wr *Report) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	pr.rep.OverPixels += wr.OverPixels
	pr.rep.RawBytes += wr.RawBytes
	pr.rep.WireBytes += wr.WireBytes
	pr.rep.FinalBlocks += wr.FinalBlocks
	pr.rep.MissingTransfers += wr.MissingTransfers
	pr.rep.MissingLayerPix += wr.MissingLayerPix
	pr.rep.MissingGathers += wr.MissingGathers
	pr.rep.Degraded = pr.rep.Degraded || wr.Degraded
}

// runTile advances one tile through stage → step loop → completion →
// progressive gather. Any returned error is errPipeStop; real causes are
// recorded on the run.
func (pr *pipeRun) runTile(w *pipeWorker, t int) error {
	me, tel := pr.me, pr.tel
	claimed := time.Now()
	pr.states[t].Store(stateRenderWait)
	tel.Flight(me, telemetry.FlightTile, telemetry.StepNone, t, -1, "claimed")
	if src := pr.opts.Pipeline.Source; src != nil {
		if err := src.WaitTile(t, pr.spans[t]); err != nil {
			return pr.failf("compositor: tile %d render: %w", t, err)
		}
	}
	endTile := tel.Span(me, telemetry.PhaseTile, telemetry.CatCompute, t)
	defer endTile()

	st := fragstore.NewTileShared(me, pr.spans, pr.local, t)
	handed := false
	defer func() {
		if !handed {
			st.Release()
		}
	}()

	var stash []tileMsg
	for i := range pr.plans[t] {
		ts := &pr.plans[t][i]
		pr.fireOnStep(ts.step)
		pr.states[t].Store(stateStepBase + int32(ts.step))
		tel.Flight(me, telemetry.FlightTile, ts.step, t, -1, "step")
		for h := 0; h < ts.pre; h++ {
			st.HalveAll()
		}
		for _, tr := range ts.sends {
			if err := send(pr.c, st, pr.cdc, &w.rep, tel, pr.epoch, ts.step, tr, w.scr); err != nil {
				if pr.recov != nil {
					if comm.IsRecoverable(err) {
						pr.abortAttempt(suspectsOf(err, tr.To), true)
						return errPipeStop
					}
					return pr.failf("compositor: step %d: %w", ts.step+1, err)
				}
				if pr.opts.OnMissing == ComposePartial && comm.IsRecoverable(err) {
					w.rep.Degraded = true
					w.rep.MissingTransfers++
					continue
				}
				return pr.failf("compositor: step %d: %w", ts.step+1, err)
			}
		}
		// Hedgeable transfers still outstanding for this step arm a timer:
		// if any is overdue past the hedge threshold, the sender's buddy is
		// asked for a byte-identical reconstruction (once per transfer).
		var pending map[comm.MsgKey]schedule.Transfer
		var hedgeC <-chan time.Time
		var hedgeTimer *time.Timer
		if pr.hedge && len(ts.recvs) > 0 {
			pending = map[comm.MsgKey]schedule.Transfer{}
			for _, tr := range ts.recvs {
				if pr.hedgeable(tr.From, ts.step, t) {
					pending[comm.MsgKey{From: tr.From, Tag: tagFor(pr.epoch, ts.step, tr.Block)}] = tr
				}
			}
			if len(pending) > 0 {
				hedgeTimer = time.NewTimer(pr.hedgeDelay(pending))
				hedgeC = hedgeTimer.C
			}
		}
		for need := len(ts.recvs); need > 0; {
			m, ok := takeStashed(&stash, ts.step)
			if !ok {
				select {
				case m = <-pr.tileCh[t]:
				case <-hedgeC:
					hedgeC = nil
					pr.issueHedges(ts.step, t, pending)
					continue
				case <-pr.cancel:
					hedgeStop(hedgeTimer)
					return errPipeStop
				}
				if m.si != ts.step {
					// A sender ahead of us already shipped a later step's
					// block; hold it for that step.
					stash = append(stash, m)
					continue
				}
			}
			need--
			if pending != nil {
				delete(pending, comm.MsgKey{From: m.tr.From, Tag: tagFor(pr.epoch, ts.step, m.tr.Block)})
			}
			if m.payload == nil {
				// The receiver declared this transfer lost (compose-partial).
				w.rep.Degraded = true
				w.rep.MissingTransfers++
				continue
			}
			if err := merge(st, pr.cdc, &w.rep, tel, ts.step, m.tr, m.payload, w.scr); err != nil {
				if errors.Is(err, codec.ErrCorrupt) {
					if pr.recov != nil {
						pr.abortAttempt(nil, true)
						return errPipeStop
					}
					if pr.opts.OnMissing == ComposePartial {
						w.rep.Degraded = true
						w.rep.MissingTransfers++
						continue
					}
				}
				return pr.fail(err)
			}
		}
		hedgeStop(hedgeTimer)
		for h := 0; h < ts.post; h++ {
			st.HalveAll()
		}
	}

	overPix, err := st.CoalesceAll()
	if err != nil {
		return pr.fail(err)
	}
	w.rep.OverPixels += overPix
	if pr.recov == nil && pr.opts.OnMissing == ComposePartial {
		missing, err := st.FillGaps(pr.sched.P)
		if err != nil {
			return pr.fail(err)
		}
		w.rep.MissingLayerPix += missing
		if missing > 0 {
			w.rep.Degraded = true
		}
	}
	if err := st.CheckComplete(pr.sched.P); err != nil {
		if pr.recov != nil {
			pr.abortAttempt(nil, true)
			return errPipeStop
		}
		return pr.fail(err)
	}
	w.rep.FinalBlocks += st.Len()

	if err := pr.deliverTile(w, t, st, &handed); err != nil {
		return err
	}
	pr.states[t].Store(stateStepBase + int32(len(pr.sched.Steps)) + 1)
	tel.Flight(me, telemetry.FlightTile, telemetry.StepNone, t, -1, "done")
	tel.Add(me, telemetry.CtrTilesDone, 1)
	tel.Observe(me, telemetry.HistTileLatency, time.Since(claimed))
	return nil
}

// hedgeStop stops a hedge timer, tolerating the unarmed (nil) case.
func hedgeStop(t *time.Timer) {
	if t != nil {
		t.Stop()
	}
}

// takeStashed pops a stashed delivery for the given step, if any.
func takeStashed(stash *[]tileMsg, si int) (tileMsg, bool) {
	s := *stash
	for i := range s {
		if s[i].si == si {
			m := s[i]
			last := len(s) - 1
			s[i] = s[last]
			s[last] = tileMsg{}
			*stash = s[:last]
			return m, true
		}
	}
	return tileMsg{}, false
}

// deliverTile streams a completed tile to the gather root: the root's own
// workers hand their store to the assembler; remote ranks encode the
// tile's final blocks and send them under the tile-gather tag, throttled
// by the credit window.
func (pr *pipeRun) deliverTile(w *pipeWorker, t int, st *fragstore.Store, handed *bool) error {
	pr.states[t].Store(stateStepBase + int32(len(pr.sched.Steps)))
	pr.tel.Flight(pr.me, telemetry.FlightTile, telemetry.StepNone, t, pr.root, "gather")
	if pr.root < 0 || st.Len() == 0 {
		return nil
	}
	if pr.me == pr.root {
		select {
		case pr.asmCh <- asmMsg{from: pr.me, tile: t, st: st}:
			*handed = true
		case <-pr.cancel:
			return errPipeStop
		}
		return nil
	}
	need := 16
	for _, b := range st.Blocks() {
		need += len(st.Frags(b)[0].Data) + 32
	}
	buf := encodeFinalBlocks(w.scr.reserveEnc(need), st)
	w.scr.enc = buf[:0:cap(buf)]
	select {
	case <-pr.credits:
	default:
		pr.tel.Add(pr.me, telemetry.CtrCreditWaits, 1)
		pr.tel.Flight(pr.me, telemetry.FlightCreditWait, telemetry.StepNone, t, pr.root, "")
		select {
		case <-pr.credits:
		case <-pr.cancel:
			return errPipeStop
		}
	}
	endG := pr.tel.Span(pr.me, telemetry.PhaseGather, telemetry.CatNetwork, t)
	err := comm.SendCtx(pr.c, pr.root, tileGatherTag(pr.epoch, t), buf,
		traceid.Context{Step: -1, Tile: t, Epoch: pr.epoch})
	endG()
	if err != nil {
		if pr.recov != nil {
			if comm.IsRecoverable(err) {
				pr.abortAttempt(suspectsOf(err, pr.root), true)
				return errPipeStop
			}
			return pr.failf("compositor: gather send: %w", err)
		}
		if pr.opts.OnMissing == ComposePartial && comm.IsRecoverable(err) {
			w.rep.Degraded = true
			w.rep.MissingGathers++
			return nil
		}
		return pr.failf("compositor: gather send: %w", err)
	}
	return nil
}

// assembler is the gather root's frame builder: it consumes contributions
// as the receiver (remote tiles) and the local workers (own tiles) produce
// them, inserts the pixels into the final image, grants flow-control
// credits, and fires the progressive-delivery callback exactly once per
// completed tile — the monotonicity contract of OnPartial.
func (pr *pipeRun) assembler() {
	defer close(pr.asmDone)
	out := raster.New(pr.local.W, pr.local.H)
	tiles := pr.sched.Tiles
	remaining := tiles
	got := make([]int, tiles)
	covered := make([]int, tiles)
	fired := make([]bool, tiles)
	consumed := make([]int, pr.sched.P)
	nfired := 0
	for remaining > 0 {
		var m asmMsg
		select {
		case m = <-pr.asmCh:
		case <-pr.cancel:
			return
		}
		t := m.tile
		got[t]++
		switch {
		case m.missing:
			// Receiver-declared loss; degradation is already accounted.
		case m.st != nil:
			for _, b := range m.st.Blocks() {
				span := b.Span(m.st.Tiles())
				out.InsertSpan(span, m.st.Frags(b)[0].Data)
				covered[t] += span.Len()
			}
			m.st.Release()
		default:
			n, err := insertFinalBlocks(out, pr.spans, m.payload, m.from)
			bufpool.Put(m.payload)
			if err != nil {
				pr.fail(err)
				return
			}
			covered[t] += n
			if m.from != pr.root {
				seq := consumed[m.from]
				consumed[m.from]++
				gw := pr.opts.Pipeline.gatherWindow(pr.expectedFrom[m.from])
				if seq+gw < pr.expectedFrom[m.from] {
					pr.tel.Add(pr.me, telemetry.CtrCreditsGranted, 1)
					if err := comm.SendCtx(pr.c, m.from, creditTag(pr.epoch, seq), creditFrame,
						traceid.Context{Step: -1, Tile: t, Epoch: pr.epoch}); err != nil {
						if pr.recov != nil && comm.IsRecoverable(err) {
							pr.abortAttempt(suspectsOf(err, m.from), true)
							return
						}
						if !comm.IsRecoverable(err) {
							pr.fail(fmt.Errorf("compositor: credit grant to rank %d: %w", m.from, err))
							return
						}
						// A dead peer misses its credit; its own deadline
						// releases it.
					}
				}
			}
		}
		if got[t] == pr.expected[t] {
			remaining--
			if covered[t] == pr.spans[t].Len() {
				if !fired[t] {
					fired[t] = true
					nfired++
					pr.tel.Add(pr.me, telemetry.CtrPartialTiles, 1)
					pr.tel.Observe(pr.me, telemetry.HistPartialLatency, time.Since(pr.t0))
					pr.partials.publish(t, pr.spans[t], out.SpanBytes(pr.spans[t]), nfired, tiles)
				}
			} else if pr.recov != nil {
				pr.abortAttempt(nil, true)
				return
			} else if !pr.sawMissing.Load() {
				pr.fail(fmt.Errorf("compositor: tile %d gathered %d of %d pixels",
					t, covered[t], pr.spans[t].Len()))
				return
			}
		}
	}
	pr.mu.Lock()
	pr.final = out
	pr.mu.Unlock()
}

// creditFrame is the one-byte payload of a gather credit.
var creditFrame = []byte{0x43}

// receiver is the single Recv owner of the run: it pumps the fabric over
// the full expected key set and dispatches every message to its consumer.
// Blocking happens in bounded chunks so cancellation is observed and the
// configured RecvTimeout accumulates as continuous silence — matching the
// synchronous path's "deadline of quiet" semantics at pipeline scale.
func (pr *pipeRun) receiver() {
	defer close(pr.recvDone)
	il := newInterleaver(pr.opts.Pipeline.InterleaveSeed)
	defer func() {
		if il != nil {
			for _, p := range il.drain() {
				bufpool.Put(p)
			}
		}
	}()
	gatherMissing := map[int]bool{}
	var keys []comm.MsgKey
	var silence time.Duration
	lastArr := time.Now()
	for {
		// Notice keys are select-only additions (like the synchronous path's
		// RecvAny key lists): the receiver exits once every substantive
		// message is in, not when a notice that may never come arrives.
		// When an estimator is present, the silence budget is the widest
		// adaptive deadline across the peers still owing substantive data —
		// per-peer knowledge tightening (or loosening) the static timeout.
		pr.expMu.Lock()
		keys = keys[:0]
		substantive := 0
		var adaptive time.Duration
		for k, d := range pr.expect {
			keys = append(keys, k)
			if d.kind.substantive() {
				substantive++
				if pr.est != nil {
					cls := gray.ClassStep
					if d.kind != kStep {
						cls = gray.ClassGather
					}
					if dl := pr.est.Deadline(cls, k.From); dl > adaptive {
						adaptive = dl
					}
				}
			}
		}
		pr.expMu.Unlock()
		deadline := pr.opts.RecvTimeout
		if pr.est != nil && adaptive > 0 {
			deadline = adaptive
		}
		if substantive == 0 {
			if il != nil && il.len() > 0 {
				// Flush the reorder buffer first — it may hold a peer's
				// FAILED notice that must still abort this attempt.
				pr.dispatch(il.pop())
				continue
			}
			return
		}
		if pr.cancelled() {
			return
		}
		timeout := pipePollChunk
		if deadline > 0 && deadline < timeout {
			timeout = deadline
		}
		if il != nil && il.len() > 0 {
			timeout = time.Nanosecond
		}
		from, tag, payload, err := pr.c.RecvAnyTimeout(keys, timeout)
		switch {
		case err == nil:
			silence = 0
			if pr.est != nil || pr.health != nil {
				now := time.Now()
				if cls, ok := classOfTag(tag); ok {
					pr.est.Observe(cls, from, now.Sub(lastArr))
				}
				lastArr = now
				pr.health.Ok(from)
			}
			if il != nil {
				il.push(from, tag, payload)
				continue
			}
			pr.dispatch(from, tag, payload)
		case errors.Is(err, comm.ErrDeadline):
			if il != nil && il.len() > 0 {
				pr.dispatch(il.pop())
				continue
			}
			silence += timeout
			if deadline > 0 && silence >= deadline {
				pr.tel.Add(pr.me, telemetry.CtrDeadlineHits, 1)
				if pr.onDeadline(err, gatherMissing) {
					return
				}
				silence = 0
			}
		case comm.IsRecoverable(err):
			if pr.onPeerError(err, gatherMissing) {
				return
			}
		default:
			pr.fail(fmt.Errorf("compositor: pipeline receive: %w", err))
			return
		}
	}
}

// dispatch routes one received message to its consumer. Channel capacities
// cover the full expected message count per consumer, so dispatch never
// blocks the pump.
func (pr *pipeRun) dispatch(from, tag int, payload []byte) {
	key := comm.MsgKey{From: from, Tag: tag}
	pr.expMu.Lock()
	d, ok := pr.expect[key]
	if ok {
		delete(pr.expect, key)
	}
	pr.expMu.Unlock()
	if !ok {
		bufpool.Put(payload)
		pr.fail(fmt.Errorf("compositor: unexpected message from rank %d tag %d", from, tag))
		return
	}
	switch d.kind {
	case kStep:
		if pr.hedge {
			pr.hedgeMu.Lock()
			dup := pr.delivered[key]
			if !dup {
				pr.delivered[key] = true
			}
			pr.hedgeMu.Unlock()
			if dup {
				// A hedged reconstruction already fed the tile; this is the
				// slow original finally arriving.
				bufpool.Put(payload)
				pr.tel.Flight(pr.me, telemetry.FlightHedge, d.si, d.tr.Block.Tile, from,
					"late original dropped")
				return
			}
		}
		pr.tileCh[d.tr.Block.Tile] <- tileMsg{si: d.si, tr: d.tr, payload: payload}
	case kGather:
		pr.asmCh <- asmMsg{from: from, tile: d.si, payload: payload}
	case kCredit:
		bufpool.Put(payload)
		pr.credits <- struct{}{}
	case kNotice:
		bufpool.Put(payload)
		// A peer already broadcast this epoch's failure; abort without
		// repeating it (mirroring the synchronous attempt).
		pr.abortAttempt(nil, false)
	case kHedgeReq:
		// Queue for the serving goroutine; the channel is sized to the
		// full registered request count, so this cannot block the pump.
		select {
		case pr.hedgeCh <- hedgeJob{from: from, payload: payload}:
		default:
			bufpool.Put(payload)
		}
	case kHedgeRep:
		pr.deliverHedge(d.orig, d.si, d.tr, payload)
	case kStale:
		bufpool.Put(payload)
	}
}

// onDeadline handles a real receive deadline (RecvTimeout of continuous
// silence across every outstanding key). Returns true when the receiver
// should exit.
func (pr *pipeRun) onDeadline(err error, gatherMissing map[int]bool) bool {
	suspects := pr.pendingSenders()
	for _, s := range suspects {
		pr.health.DeadlineMiss(s)
	}
	switch {
	case pr.recov != nil:
		// Brownout vs death: with health scoring, a first (or occasional)
		// miss earns grace — the run keeps waiting instead of evicting a
		// peer that is slow but still delivering. Only a score sustained
		// past the escalation bar hands the suspects to failure agreement.
		if pr.health != nil && len(suspects) > 0 {
			escalate := false
			for _, s := range suspects {
				if pr.health.ShouldEscalate(s) {
					escalate = true
					break
				}
			}
			if !escalate {
				pr.tel.Add(pr.me, telemetry.CtrDeadlineGrace, 1)
				pr.tel.Flight(pr.me, telemetry.FlightGray, telemetry.StepNone, -1, -1,
					fmt.Sprintf("deadline grace for ranks %v", suspects))
				return false
			}
			pr.tel.Add(pr.me, telemetry.CtrHealthEscalations, 1)
		}
		pr.abortAttempt(suspects, true)
		return true
	case pr.opts.OnMissing == ComposePartial:
		pr.dropPending(func(comm.MsgKey) bool { return true }, gatherMissing)
		return false // expect is empty now; the loop exits on its own
	default:
		pr.tel.Flight(pr.me, telemetry.FlightStall, telemetry.StepNone, -1, -1, "pipeline stalled")
		pr.fail(fmt.Errorf("compositor: pipeline stalled: %w\n%s", err, pr.stallDump()))
		return true
	}
}

// onPeerError handles a fabric-reported peer failure. Returns true when
// the receiver should exit.
func (pr *pipeRun) onPeerError(err error, gatherMissing map[int]bool) bool {
	var perr *comm.PeerError
	if !errors.As(err, &perr) {
		pr.fail(fmt.Errorf("compositor: pipeline receive: %w", err))
		return true
	}
	switch {
	case pr.recov != nil:
		pr.abortAttempt([]int{perr.Rank}, true)
		return true
	case pr.opts.OnMissing == ComposePartial:
		pr.dropPending(func(k comm.MsgKey) bool { return k.From == perr.Rank }, gatherMissing)
		return false
	default:
		pr.tel.Flight(pr.me, telemetry.FlightStall, telemetry.StepNone, -1, -1, "peer failed")
		pr.fail(fmt.Errorf("compositor: pipeline: %w\n%s", err, pr.stallDump()))
		return true
	}
}

// stallDump is the post-mortem a FailFast stall fails with: the per-tile
// state dump plus the flight recorder's recent event history, so the error
// itself carries what each tile was doing when the run wedged.
func (pr *pipeRun) stallDump() string {
	dump := pr.stateDump()
	if fd := pr.tel.FlightDump(); fd != "" {
		dump += "\n" + fd
	}
	return dump
}

// dropPending declares every matching expected message lost, under the
// compose-partial policy: step transfers become nil-payload deliveries so
// the owning tile substitutes blanks, gather contributions become missing
// notices to the assembler (counted once per source rank), and credits are
// granted locally so no worker starves on a silent root.
func (pr *pipeRun) dropPending(match func(comm.MsgKey) bool, gatherMissing map[int]bool) {
	type drop struct {
		k comm.MsgKey
		d pipeExpect
	}
	pr.expMu.Lock()
	var dropped []drop
	for k, d := range pr.expect {
		if match(k) && d.kind.substantive() {
			dropped = append(dropped, drop{k, d})
			delete(pr.expect, k)
		}
	}
	pr.expMu.Unlock()
	// Under hedging, a transfer whose reconstruction already fed the tile
	// is not missing — only the real losses degrade the frame. Unclaimed
	// drops are marked delivered so a hedge reply still in flight becomes a
	// wasted duplicate instead of a double delivery.
	real := dropped
	if pr.hedge {
		real = dropped[:0]
		var covered []drop
		for _, kd := range dropped {
			if kd.d.kind == kStep {
				pr.hedgeMu.Lock()
				won := pr.delivered[kd.k]
				if !won {
					pr.delivered[kd.k] = true
				}
				pr.hedgeMu.Unlock()
				if won {
					covered = append(covered, kd)
					continue
				}
			}
			real = append(real, kd)
		}
		if len(covered) > 0 {
			// The slow originals of hedge-won transfers are still coming;
			// re-register them as stale so their arrival is swallowed.
			pr.expMu.Lock()
			for _, kd := range covered {
				pr.expect[kd.k] = pipeExpect{kind: kStale}
			}
			pr.expMu.Unlock()
		}
		if len(dropped) > 0 && len(real) == 0 {
			return // every matched loss was already hedge-covered
		}
	}
	pr.sawMissing.Store(true)
	pr.mu.Lock()
	pr.rep.Degraded = true
	pr.mu.Unlock()
	for _, kd := range real {
		switch kd.d.kind {
		case kStep:
			pr.tileCh[kd.d.tr.Block.Tile] <- tileMsg{si: kd.d.si, tr: kd.d.tr}
		case kGather:
			if !gatherMissing[kd.k.From] {
				gatherMissing[kd.k.From] = true
				pr.mu.Lock()
				pr.rep.MissingGathers++
				pr.mu.Unlock()
			}
			pr.asmCh <- asmMsg{from: kd.k.From, tile: kd.d.si, missing: true}
		case kCredit:
			pr.credits <- struct{}{}
		}
	}
}

// pendingSenders lists the distinct source ranks still owing messages,
// ascending — the suspect set of a deadline abort.
func (pr *pipeRun) pendingSenders() []int {
	set := map[int]bool{}
	pr.expMu.Lock()
	for k, d := range pr.expect {
		if d.kind == kStep || d.kind == kGather {
			set[k.From] = true
		}
	}
	pr.expMu.Unlock()
	return setKeys(set)
}

// stateDump renders every tile's pipeline state plus the receiver's
// outstanding debts — the diagnostic a stalled run fails with instead of
// hanging.
func (pr *pipeRun) stateDump() string {
	type debt struct {
		msgs    int
		senders map[int]bool
	}
	perTile := make([]debt, pr.sched.Tiles)
	gathers := 0
	credits := 0
	pr.expMu.Lock()
	for k, d := range pr.expect {
		switch d.kind {
		case kStep:
			t := d.tr.Block.Tile
			if perTile[t].senders == nil {
				perTile[t].senders = map[int]bool{}
			}
			perTile[t].msgs++
			perTile[t].senders[k.From] = true
		case kGather:
			gathers++
		case kCredit:
			credits++
		}
	}
	pr.expMu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "per-tile states (rank %d, window %d, in flight %d):\n",
		pr.me, pr.window, pr.inFlight.Load())
	nsteps := len(pr.sched.Steps)
	for t := range perTile {
		v := pr.states[t].Load()
		var name string
		switch {
		case v == stateUnclaimed:
			name = "unclaimed"
		case v == stateRenderWait:
			name = "awaiting render"
		case v == stateStepBase+int32(nsteps):
			name = "gather"
		case v == stateStepBase+int32(nsteps)+1:
			name = "done"
		default:
			name = fmt.Sprintf("step %d/%d", v-stateStepBase+1, nsteps)
		}
		fmt.Fprintf(&b, "  tile %d: %s", t, name)
		if perTile[t].msgs > 0 {
			fmt.Fprintf(&b, ", awaiting %d message(s) from ranks %v",
				perTile[t].msgs, setKeys(perTile[t].senders))
		}
		b.WriteString("\n")
	}
	if gathers > 0 {
		fmt.Fprintf(&b, "  gather: awaiting %d tile contribution(s)\n", gathers)
	}
	if credits > 0 {
		fmt.Fprintf(&b, "  credits: awaiting %d grant(s) from root %d\n", credits, pr.root)
	}
	return strings.TrimRight(b.String(), "\n")
}

// teardown recycles whatever an aborted or failed run left in flight.
func (pr *pipeRun) teardown() {
	for _, ch := range pr.tileCh {
		for {
			select {
			case m := <-ch:
				bufpool.Put(m.payload)
			default:
				goto next
			}
		}
	next:
	}
	if pr.asmCh != nil {
		for {
			select {
			case m := <-pr.asmCh:
				bufpool.Put(m.payload)
				if m.st != nil {
					m.st.Release()
				}
			default:
				return
			}
		}
	}
}

// runPipelined executes one pipelined epoch. With recov == nil it runs
// under the FailFast/ComposePartial semantics of runOnce; with a recovery
// context it is the epoch-0 attempt of the Recover policy, returning
// aborted == true after a quiescent drain when the attempt must be retried
// synchronously over a repaired schedule.
func runPipelined(c comm.Comm, sched *schedule.Schedule, local *raster.Image, opts Options,
	cdc codec.Codec, rep *Report, recov *rexec) (*raster.Image, bool, error) {
	pr, err := newPipeRun(c, sched, local, opts, cdc, rep, recov)
	if err != nil {
		return nil, false, err
	}
	if pr.hedge {
		if recov != nil {
			// The Recover policy already exchanged buddy replicas; serve
			// hedges from those.
			pr.replicas = recov.replicas
		} else if err := pr.exchangeHedgeReplicas(); err != nil {
			pr.partials.finish()
			return nil, false, err
		}
	}
	pr.run()
	pr.teardown()
	pr.partials.finish()
	pr.tel.Add(pr.me, telemetry.CtrPipeInflightMax, pr.maxInFlight.Load())
	pr.mu.Lock()
	ferr, aborted, final := pr.err, pr.aborted, pr.final
	pr.mu.Unlock()
	if ferr != nil {
		return nil, false, ferr
	}
	if aborted {
		return nil, true, nil
	}
	if recov == nil && opts.GatherRoot >= 0 && opts.Broadcast {
		final, err = broadcastFinal(c, opts, rep, final, local.W, local.H)
		if err != nil {
			return nil, false, err
		}
	}
	return final, false, nil
}
