package compositor

import (
	"fmt"
	"math/rand"
	"testing"

	"rtcomp/internal/codec"
	"rtcomp/internal/compose"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
)

// The differential suite checks the distributed compositors against the
// sequential reference: with binary alpha the over operator is exactly
// associative in uint8, so every schedule must produce a byte-identical
// image no matter how it reorders and splits the compositing work.

// differentialMethods are the paper's four composition methods under test,
// with each method's processor-count constraint.
func differentialMethods() []method {
	return []method{
		{"rt-n", func(p int) (*schedule.Schedule, error) { return schedule.NRT(p, 4) },
			func(p int) bool { return p%2 == 0 }},
		{"rt-2n", func(p int) (*schedule.Schedule, error) { return schedule.TwoNRT(p, 4) },
			func(int) bool { return true }},
		{"binary-swap", schedule.BinarySwap, schedule.IsPowerOfTwo},
		{"pipeline", schedule.Pipeline, func(int) bool { return true }},
	}
}

func TestDifferentialAgainstSequential(t *testing.T) {
	const w, h = 64, 48
	for _, p := range []int{2, 3, 4, 5, 8} {
		for _, m := range differentialMethods() {
			if !m.okFor(p) {
				continue
			}
			for _, cdcName := range []string{"raw", "rle", "trle"} {
				t.Run(fmt.Sprintf("%s/p%d/%s", m.name, p, cdcName), func(t *testing.T) {
					cdc, err := codec.ByName(cdcName)
					if err != nil {
						t.Fatal(err)
					}
					sched, err := m.build(p)
					if err != nil {
						t.Fatal(err)
					}
					// A distinct seed per case so every (method, p, codec)
					// cell sees its own random sub-images.
					rng := rand.New(rand.NewSource(int64(p*1000 + len(m.name)*10 + len(cdcName))))
					layers := makeLayers(rng, p, w, h, true)
					want := compose.SerialComposite(layers)
					got := runInproc(t, sched, layers, cdc)
					if !raster.Equal(got, want) {
						t.Fatalf("%s p=%d codec=%s differs from sequential reference: maxdiff=%d",
							m.name, p, cdcName, raster.MaxDiff(got, want))
					}
				})
			}
		}
	}
}

func TestDifferentialSparseAndDenseLayers(t *testing.T) {
	// Degenerate alpha distributions stress the codecs' blank handling:
	// all-blank layers (the over identity everywhere) and all-opaque layers
	// (no compression opportunity) must still match the reference exactly.
	const w, h = 32, 32
	cdc := codec.TRLE{}
	for _, density := range []float64{0, 0.05, 0.95, 1} {
		for _, p := range []int{2, 4, 5} {
			t.Run(fmt.Sprintf("density%g/p%d", density, p), func(t *testing.T) {
				sched, err := schedule.TwoNRT(p, 4)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(int64(p) + int64(density*100)))
				layers := make([]*raster.Image, p)
				for r := range layers {
					layers[r] = raster.RandomBinaryImage(rng, w, h, density)
				}
				want := compose.SerialComposite(layers)
				got := runInproc(t, sched, layers, cdc)
				if !raster.Equal(got, want) {
					t.Fatalf("density=%g p=%d: maxdiff=%d", density, p, raster.MaxDiff(got, want))
				}
			})
		}
	}
}

func TestDifferentialManySeeds(t *testing.T) {
	// A light property sweep: many random layer sets through one
	// representative schedule per method, all byte-identical to sequential.
	if testing.Short() {
		t.Skip("short mode")
	}
	const w, h, p = 40, 40, 4
	cdc := codec.TRLE{}
	for _, m := range differentialMethods() {
		sched, err := m.build(p)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(seed))
			layers := makeLayers(rng, p, w, h, true)
			want := compose.SerialComposite(layers)
			got := runInproc(t, sched, layers, cdc)
			if !raster.Equal(got, want) {
				t.Fatalf("%s seed=%d: maxdiff=%d", m.name, seed, raster.MaxDiff(got, want))
			}
		}
	}
}
