// Package compositor executes a composition schedule on real image data
// over any comm.Comm fabric: it stages the local partial image into blocks,
// ships and receives blocks step by step, composites received fragments in
// depth order with the "over" operator, and finally gathers the fully
// composited blocks to a root rank.
//
// The same executor runs every method — binary-swap, parallel-pipelined,
// direct-send and both rotate-tiling variants — because the methods differ
// only in their schedules.
package compositor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"rtcomp/internal/bufpool"
	"rtcomp/internal/codec"
	"rtcomp/internal/comm"
	"rtcomp/internal/fragstore"
	"rtcomp/internal/gray"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/traceid"
)

// Policy selects how a composition reacts to a missing contribution — a
// peer that died or a message that never beat the receive deadline.
type Policy int

const (
	// FailFast aborts the composition with a typed error naming the stall.
	FailFast Policy = iota
	// ComposePartial substitutes blank (fully transparent) data for the
	// missing contributions, finishes the composition, and flags the
	// result via Report.Degraded — the show-must-go-on configuration of an
	// interactive display wall.
	ComposePartial
	// Recover replicates every rank's initial sub-image to a deterministic
	// buddy before step 1, detects failures via deadlines and FAILED
	// notices, agrees on the dead set with the survivors, and re-executes
	// the composition over a repaired schedule — producing a complete,
	// pixel-exact image flagged Recovered instead of a degraded one.
	// Requires a positive RecvTimeout. When the recovery budget
	// (MaxRecoveries) is exhausted or a dead rank's replica died with its
	// buddy, it falls back to one compose-partial epoch and forces the
	// Degraded flag (the result was never certified complete).
	Recover
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FailFast:
		return "fail"
	case ComposePartial:
		return "partial"
	case Recover:
		return "recover"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy parses a policy flag value: "fail"/"fail-fast",
// "partial"/"compose-partial" or "recover".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "fail", "fail-fast":
		return FailFast, nil
	case "partial", "compose-partial":
		return ComposePartial, nil
	case "recover":
		return Recover, nil
	}
	return FailFast, fmt.Errorf("compositor: unknown missing-data policy %q (want fail, partial or recover)", s)
}

// Options configures a composition run.
type Options struct {
	// Codec compresses block payloads on the wire; nil means raw.
	Codec codec.Codec
	// GatherRoot is the rank that assembles the final image. Set to a
	// negative value to skip the gather (each rank keeps its final blocks).
	GatherRoot int
	// Broadcast, with a non-negative GatherRoot, redistributes the
	// assembled image from the root so every rank returns it — the
	// display-wall configuration.
	Broadcast bool
	// RecvTimeout bounds every receive of the composition (per step and
	// per gathered rank). Zero waits forever — the lossless-fabric
	// configuration.
	RecvTimeout time.Duration
	// OnMissing selects the degradation policy when a receive deadline
	// elapses or a peer fails. It only takes effect with a non-zero
	// RecvTimeout or a fabric that reports peer failures.
	OnMissing Policy
	// MaxRecoveries bounds how many times the Recover policy re-executes
	// the composition after a failure agreement. Zero means the default
	// (DefaultMaxRecoveries); a negative value forbids re-execution, so
	// any failure goes straight to the compose-partial fallback.
	MaxRecoveries int
	// AgreeTimeout bounds each membership agreement round under Recover.
	// Zero means 3x RecvTimeout — enough for a peer that was still blocked
	// on the dead rank to reach the agreement late.
	AgreeTimeout time.Duration
	// Telemetry records per-phase spans (encode/send/recv/decode/merge/
	// gather) and per-step byte counters for this run. Nil disables
	// recording — the default, and effectively free on the hot path.
	Telemetry *telemetry.Recorder
	// OnStep, when non-nil, is called with the 0-based step index as this
	// rank enters each composition step — the chaos-testing seam for
	// injecting faults at an exact position in the exchange. Under the
	// Recover policy it fires again for every re-executed epoch. Under the
	// pipelined executor it fires once per step, the first time any tile
	// enters that step.
	OnStep func(step int)
	// Pipeline selects and tunes the message-driven per-tile executor
	// (pipeline.go); the zero value keeps the bulk-synchronous step loop.
	// The configuration must match across all ranks of a run. Under the
	// Recover policy only the first (epoch-0) attempt is pipelined:
	// re-executions over repaired schedules run synchronously after the
	// in-flight window has drained at the recovery budget.
	Pipeline PipelineConfig
	// Adaptive, when non-nil, replaces the static RecvTimeout with per-peer
	// deadlines learned from observed latency (see gray.Estimator): warm
	// peers get tight deadlines, cold peers fall back to RecvTimeout. It
	// also derives the hedge trigger when HedgeConfig.Threshold is zero.
	// The estimator should persist across frames of one run so later frames
	// benefit from earlier ones.
	Adaptive *gray.Estimator
	// Health, when non-nil, accumulates gray-failure signals per peer —
	// deadline misses, hedges won, session retransmits — and gates the
	// Recover policy's deadline escalation: a peer that is slow but still
	// delivering earns grace instead of a recovery epoch, until its score
	// is sustained past the escalation bar (see gray.Health).
	Health *gray.Health
	// RejoinTimeout, under the Recover policy, enables the self-healing
	// join path: after every membership change the survivors wait up to
	// this long for a spare rank (RunSpare) to announce itself before they
	// decide to keep recovering degraded. Zero disables rejoin entirely —
	// the pre-existing behavior. Must match across all ranks of a run.
	RejoinTimeout time.Duration
	// ScrubReplicas, under the Recover policy, runs the replica scrub
	// exchange after the buddy exchange: every holder re-hashes its ward
	// replicas against the merkle roots recorded at exchange time and
	// repairs silent corruption from the live copy (scrub_ok /
	// scrub_repaired counters). Must match across all ranks of a run.
	ScrubReplicas bool
	// hookReplicas, when non-nil, is called with this rank's ward replicas
	// right after the scrubber records their fingerprints — the test seam
	// for injecting the silent corruption the scrub pass must detect.
	hookReplicas func(rank int, replicas map[int]*raster.Image)
}

// Report summarises one rank's work during a composition.
type Report struct {
	Rank        int
	Comm        comm.Counters // traffic including the final gather
	OverPixels  int64         // pixels passed through the over kernel
	RawBytes    int64         // block payload bytes before compression
	WireBytes   int64         // block payload bytes after compression
	FinalBlocks int           // final blocks this rank owned before gather

	// Degraded flags a compose-partial result that is missing
	// contributions; the counters below attribute the damage.
	Degraded         bool
	MissingTransfers int   // scheduled messages that never arrived (or failed to send)
	MissingLayerPix  int64 // pixels times absent ranks substituted as blank
	MissingGathers   int   // ranks whose final blocks never reached the gather root

	// Recovered flags a Recover-policy result that lost ranks mid-frame
	// and still certified a complete image from replicated sub-images.
	Recovered      bool
	RecoveryEpochs int   // composition epochs re-executed after agreement
	RecoveredRanks []int // dead ranks whose layers were recovered

	// Rejoined flags a run during which at least one dead rank slot was
	// re-admitted by the join protocol (so the frame committed at full
	// capacity; a fully healed run reports Recovered=false). On a spare
	// (RunSpare) it flags the successful verified state transfer.
	Rejoined      bool
	RejoinEpochs  int   // successful join rounds during the run
	RejoinedRanks []int // rank slots re-admitted by the join protocol
}

// resetDegradation clears the per-epoch damage tallies: they describe the
// image that is finally returned, so an aborted epoch's bookkeeping must
// not leak into the next attempt's report. The cumulative work counters
// (RawBytes, WireBytes, OverPixels) intentionally survive.
func (r *Report) resetDegradation() {
	r.Degraded = false
	r.MissingTransfers = 0
	r.MissingLayerPix = 0
	r.MissingGathers = 0
	r.FinalBlocks = 0
}

// Run executes the schedule for this rank's partial image. On the gather
// root it returns the assembled final image; on other ranks (or when the
// gather is disabled) the image result is nil.
func Run(c comm.Comm, sched *schedule.Schedule, local *raster.Image, opts Options) (*raster.Image, *Report, error) {
	if c.Size() != sched.P {
		return nil, nil, fmt.Errorf("compositor: communicator has %d ranks, schedule wants %d", c.Size(), sched.P)
	}
	if opts.GatherRoot >= sched.P {
		return nil, nil, fmt.Errorf("compositor: gather root %d out of range", opts.GatherRoot)
	}
	cdc := opts.Codec
	if cdc == nil {
		cdc = codec.Raw{}
	}
	if opts.OnMissing == Recover {
		return runRecover(c, sched, local, opts, cdc)
	}
	rep := &Report{Rank: c.Rank()}
	var final *raster.Image
	var err error
	if opts.Pipeline.Enabled {
		final, _, err = runPipelined(c, sched, local, opts, cdc, rep, nil)
	} else {
		scr := newRunScratch()
		final, err = runOnce(c, sched, local, opts, cdc, rep, 0, nil, nil, nil, scr)
		scr.release()
	}
	if err != nil {
		return nil, nil, err
	}
	finalizeReport(c, rep, opts.Telemetry)
	return final, rep, nil
}

// runOnce executes one epoch of a plan under the FailFast/ComposePartial
// semantics: stage, step loop, gap filling, completeness check, gather and
// optional broadcast. The recovery path reuses it for the compose-partial
// fallback epoch, staging replica layers at their owners (owners[l] is the
// rank contributing layer l, -1 = absent) and skipping ranks known dead.
// Tags are scoped by epoch so a re-execution never consumes traffic from
// an aborted attempt.
func runOnce(c comm.Comm, sched *schedule.Schedule, local *raster.Image, opts Options, cdc codec.Codec,
	rep *Report, epoch int, owners []int, replicas map[int]*raster.Image, dead []bool, scr *runScratch) (*raster.Image, error) {
	me := c.Rank()
	st := fragstore.New(me, sched, local)
	tel := opts.Telemetry
	for l, o := range owners {
		if o != me || l == me {
			continue
		}
		img := replicas[l]
		if img == nil {
			// The replica never arrived; the layer stays absent and the
			// gap-filling pass blanks it like any missing contribution.
			continue
		}
		overPix, err := st.InsertLayer(l, img)
		if err != nil {
			return nil, err
		}
		rep.OverPixels += overPix
	}

	for si, step := range sched.Steps {
		if opts.OnStep != nil {
			opts.OnStep(si)
		}
		for h := 0; h < step.PreHalvings; h++ {
			st.HalveAll()
		}
		// Issue every send eagerly, then drain the receives in arrival
		// order (RecvAny): the fabric buffers, so a stepwise schedule
		// cannot deadlock, and arrival-order processing avoids
		// head-of-line blocking when several messages are outstanding.
		clear(scr.pending)
		pending := scr.pending
		for _, tr := range step.Transfers {
			switch {
			case tr.From == me:
				if err := send(c, st, cdc, rep, tel, epoch, si, tr, scr); err != nil {
					if opts.OnMissing == ComposePartial && comm.IsRecoverable(err) {
						rep.Degraded = true
						rep.MissingTransfers++
						continue
					}
					return nil, fmt.Errorf("compositor: step %d: %w", si+1, err)
				}
			case tr.To == me:
				pending[comm.MsgKey{From: tr.From, Tag: tagFor(epoch, si, tr.Block)}] = tr
			}
		}
		keys := scr.keys[:0]
		for k := range pending {
			keys = append(keys, k)
		}
		scr.keys = keys[:0:cap(keys)]
		for len(pending) > 0 {
			// With an estimator, the receive deadline is the widest adaptive
			// deadline across the peers still owing data (falling back to
			// the static RecvTimeout while they are cold).
			timeout := opts.RecvTimeout
			if opts.Adaptive != nil {
				var adaptive time.Duration
				for k := range pending {
					if d := opts.Adaptive.Deadline(gray.ClassStep, k.From); d > adaptive {
						adaptive = d
					}
				}
				if adaptive > 0 {
					timeout = adaptive
				}
			}
			endRecv := tel.Span(me, telemetry.PhaseRecv, telemetry.CatNetwork, si)
			recvT0 := time.Now()
			from, tag, payload, err := c.RecvAnyTimeout(keys, timeout)
			endRecv()
			if err != nil {
				if errors.Is(err, comm.ErrDeadline) {
					tel.Add(me, telemetry.CtrDeadlineHits, 1)
					for k := range pending {
						opts.Health.DeadlineMiss(k.From)
					}
				}
				if opts.OnMissing == ComposePartial && comm.IsRecoverable(err) {
					rep.Degraded = true
					if dropped, ok := dropFailedPeer(err, pending, &keys); ok {
						// Only that peer's messages are hopeless; keep
						// waiting for the remaining sources.
						rep.MissingTransfers += dropped
						continue
					}
					// Deadline elapsed: everything still pending missed it.
					rep.MissingTransfers += len(pending)
					break
				}
				return nil, fmt.Errorf("compositor: step %d: %w", si+1, err)
			}
			if opts.Adaptive != nil {
				opts.Adaptive.Observe(gray.ClassStep, from, time.Since(recvT0))
			}
			opts.Health.Ok(from)
			key := comm.MsgKey{From: from, Tag: tag}
			tr, ok := pending[key]
			if !ok {
				return nil, fmt.Errorf("compositor: unexpected message from rank %d tag %d", from, tag)
			}
			delete(pending, key)
			for i, k := range keys {
				if k == key {
					keys = append(keys[:i], keys[i+1:]...)
					break
				}
			}
			if err := merge(st, cdc, rep, tel, si, tr, payload, scr); err != nil {
				if opts.OnMissing == ComposePartial && errors.Is(err, codec.ErrCorrupt) {
					// A corrupt payload is discarded like a lost message.
					rep.Degraded = true
					rep.MissingTransfers++
					continue
				}
				return nil, err
			}
		}
		for h := 0; h < step.PostHalvings; h++ {
			st.HalveAll()
		}
	}

	// A repaired plan stages buddy pairs as adjacent fragments that no
	// transfer ever composites (zero-step meshes, P=2); coalesce before the
	// completeness check.
	overPix, err := st.CoalesceAll()
	if err != nil {
		return nil, err
	}
	rep.OverPixels += overPix
	if opts.OnMissing == ComposePartial {
		missing, err := st.FillGaps(sched.P)
		if err != nil {
			return nil, err
		}
		rep.MissingLayerPix += missing
		if missing > 0 {
			rep.Degraded = true
		}
	}
	if err := st.CheckComplete(sched.P); err != nil {
		return nil, err
	}
	rep.FinalBlocks = st.Len()

	var final *raster.Image
	if opts.GatherRoot >= 0 {
		endGather := tel.Span(me, telemetry.PhaseGather, telemetry.CatNetwork, telemetry.StepNone)
		img, err := gather(c, st, rep, opts, epoch, dead, local.W, local.H, scr)
		endGather()
		if err != nil {
			return nil, err
		}
		// The gather consumed the composited blocks (copied onto the wire or
		// into the final image); their buffers feed the next composition.
		st.Release()
		final = img
		if opts.Broadcast {
			final, err = broadcastFinal(c, opts, rep, img, local.W, local.H)
			if err != nil {
				return nil, err
			}
		}
	}
	return final, nil
}

// broadcastFinal redistributes the assembled image from the gather root so
// every rank returns it — shared by the synchronous and pipelined paths.
func broadcastFinal(c comm.Comm, opts Options, rep *Report, final *raster.Image, w, h int) (*raster.Image, error) {
	var seq comm.Sequencer
	var payload []byte
	if c.Rank() == opts.GatherRoot {
		payload = final.Pix
	}
	data, err := comm.BcastTimeout(c, &seq, opts.GatherRoot, payload, opts.RecvTimeout)
	if err != nil {
		if !(opts.OnMissing == ComposePartial && comm.IsRecoverable(err)) {
			return nil, fmt.Errorf("compositor: broadcast: %w", err)
		}
		rep.Degraded = true
	}
	if c.Rank() != opts.GatherRoot && data != nil {
		final = raster.New(w, h)
		if len(data) != len(final.Pix) {
			return nil, fmt.Errorf("compositor: broadcast image has %d bytes, want %d",
				len(data), len(final.Pix))
		}
		copy(final.Pix, data)
		bufpool.Put(data)
	}
	return final, nil
}

// finalizeReport snapshots the fabric totals and publishes the run-level
// counters, so live /metrics and the rank-0 table see what Report sees. It
// runs once per composition, after the last epoch.
func finalizeReport(c comm.Comm, rep *Report, tel *telemetry.Recorder) {
	rep.Comm = c.Counters()
	me := rep.Rank
	tel.Add(me, telemetry.CtrCommMsgsSent, rep.Comm.MsgsSent)
	tel.Add(me, telemetry.CtrCommBytesSent, rep.Comm.BytesSent)
	tel.Add(me, telemetry.CtrCommMsgsRecv, rep.Comm.MsgsRecv)
	tel.Add(me, telemetry.CtrCommBytesRecv, rep.Comm.BytesRecv)
	tel.Add(me, telemetry.CtrMissingTransfers, int64(rep.MissingTransfers))
}

// tagFor packs (epoch, step, block) into a unique non-negative tag. Epochs
// occupy bits 56+, so they stay unique up to epoch 63 — far beyond any
// recovery budget.
func tagFor(epoch, step int, b schedule.Block) int {
	return epoch<<56 | ((step+1)&0xFFFF)<<40 | (b.Tile&0xFFFF)<<24 | (b.Level&0xFF)<<16 | (b.Index & 0xFFFF)
}

// tagGatherFinal is the epoch-0 tag of the final-block gather messages.
// Step tags always carry step+1 >= 1 in bits 40+, so any value below 2^40
// is free (the replica-exchange tag lives there too).
const tagGatherFinal = (1 << 39) + 0x6A74

// gatherTag scopes the final-block gather to a recovery epoch.
func gatherTag(epoch int) int { return epoch<<56 | tagGatherFinal }

// dropFailedPeer, given a receive error, removes the pending transfers
// sourced at the failed peer (if the error names one) and reports how many
// were dropped; ok is false when the error is not peer-attributed.
func dropFailedPeer(err error, pending map[comm.MsgKey]schedule.Transfer, keys *[]comm.MsgKey) (dropped int, ok bool) {
	var perr *comm.PeerError
	if !errors.As(err, &perr) {
		return 0, false
	}
	for k := range pending {
		if k.From == perr.Rank {
			delete(pending, k)
			dropped++
		}
	}
	kept := (*keys)[:0]
	for _, k := range *keys {
		if k.From != perr.Rank {
			kept = append(kept, k)
		}
	}
	*keys = kept
	return dropped, true
}

// runScratch holds one rank's reusable buffers for a composition run. The
// step loop re-slices these instead of allocating per message, so after the
// first step warms them a steady-state step allocates nothing.
type runScratch struct {
	enc      []byte                            // assembled outgoing block message
	fragEnc  []byte                            // single-fragment codec output
	encFrags []fragstore.EncodedFragment       // parsed-but-undecoded fragment views
	keys     []comm.MsgKey                     // pending receive keys
	pending  map[comm.MsgKey]schedule.Transfer // pending transfers, cleared per step
}

// scratchPool recycles runScratch shells (struct, pending map, slice
// headers) across runs and across the pipelined executor's workers. The
// pooled byte buffers inside go back to bufpool on release; the shell
// itself would otherwise be allocated once per worker per composition,
// which the allocation benchmarks count against every pipelined cell.
var scratchPool = sync.Pool{
	New: func() any { return &runScratch{pending: map[comm.MsgKey]schedule.Transfer{}} },
}

func newRunScratch() *runScratch {
	return scratchPool.Get().(*runScratch)
}

// reserveEnc returns an empty slice with at least `need` capacity for the
// outgoing-message buffer, drawing replacements from the pool so a fresh
// scratch warms up without append-growth churn. `need` is a pre-sizing hint,
// not a limit: append past it still works, it just reallocates.
func (scr *runScratch) reserveEnc(need int) []byte {
	if cap(scr.enc) < need {
		bufpool.Put(scr.enc[:0])
		scr.enc = bufpool.Get(need)[:0]
	}
	return scr.enc[:0]
}

// release returns the scratch's pooled buffers to bufpool and the scratch
// shell to its own pool; the scratch warms up again on next use. Call when
// a composition run completes — the caller must not touch scr afterwards.
func (scr *runScratch) release() {
	bufpool.Put(scr.enc[:0])
	bufpool.Put(scr.fragEnc[:0])
	scr.enc, scr.fragEnc = nil, nil
	scr.keys = scr.keys[:0]
	scr.encFrags = scr.encFrags[:0]
	clear(scr.pending)
	scratchPool.Put(scr)
}

// encBound over-estimates the encoded size of a fragment's pixels: every
// codec in this package emits at most 2x the raw bytes plus a small header
// (RLE's worst case is 1.5x; TRLE's is 9/8x plus a uvarint). An external
// codec that exceeds it only costs an append reallocation.
func encBound(rawLen int) int { return 2*rawLen + 32 }

// EncodeFragments serialises a fragment list with the given codec:
// uvarint(count), then per fragment uvarint(lo), uvarint(hi),
// uvarint(len(enc)), enc. It also reports the raw and encoded payload
// sizes. The format is shared with the virtual-time simulator so both
// account wire bytes identically.
func EncodeFragments(frags []fragstore.Fragment, cdc codec.Codec) (buf []byte, raw, wire int64) {
	var fragScratch []byte
	buf, raw, wire = EncodeFragmentsAppend(nil, frags, cdc, &fragScratch)
	bufpool.Put(fragScratch[:0])
	return buf, raw, wire
}

// EncodeFragmentsAppend is EncodeFragments appending to dst, producing the
// identical wire format without allocating once dst and *fragScratch are
// warm. Each fragment is encoded into *fragScratch first — the format puts
// uvarint(len(enc)) before enc, so the length must be known before the
// bytes land in the message — then copied in.
func EncodeFragmentsAppend(dst []byte, frags []fragstore.Fragment, cdc codec.Codec, fragScratch *[]byte) (buf []byte, raw, wire int64) {
	buf = binary.AppendUvarint(dst, uint64(len(frags)))
	for _, f := range frags {
		if need := encBound(len(f.Data)); cap(*fragScratch) < need {
			bufpool.Put((*fragScratch)[:0])
			*fragScratch = bufpool.Get(need)[:0]
		}
		*fragScratch = cdc.EncodeAppend((*fragScratch)[:0], f.Data)
		enc := *fragScratch
		raw += int64(len(f.Data))
		wire += int64(len(enc))
		buf = binary.AppendUvarint(buf, uint64(f.Rng.Lo))
		buf = binary.AppendUvarint(buf, uint64(f.Rng.Hi))
		buf = binary.AppendUvarint(buf, uint64(len(enc)))
		buf = append(buf, enc...)
	}
	return buf, raw, wire
}

// DecodeFragments inverts EncodeFragments for a block of npix pixels. All
// failures wrap codec.ErrCorrupt, so callers can treat a mangled payload
// like a lost message under a degradation policy. Fragment buffers are
// freshly allocated and never alias payload.
func DecodeFragments(payload []byte, cdc codec.Codec, npix int) ([]fragstore.Fragment, error) {
	return decodeFragments(nil, payload, cdc, npix, false)
}

// DecodeFragmentsInto is DecodeFragments appending to dst, drawing the
// fragment buffers from the buffer pool: ownership of each Data buffer
// passes to the caller (in practice, to the fragment store, which releases
// it back to the pool when a composite drops it). The returned fragments
// never alias payload, so the caller may recycle payload immediately.
func DecodeFragmentsInto(dst []fragstore.Fragment, payload []byte, cdc codec.Codec, npix int) ([]fragstore.Fragment, error) {
	return decodeFragments(dst, payload, cdc, npix, true)
}

func decodeFragments(dst []fragstore.Fragment, payload []byte, cdc codec.Codec, npix int, pooled bool) ([]fragstore.Fragment, error) {
	incoming := dst
	fail := func(err error) ([]fragstore.Fragment, error) {
		if pooled {
			fragstore.ReleaseAll(incoming[len(dst):])
		}
		return nil, err
	}
	nfrags, off := binary.Uvarint(payload)
	if off <= 0 {
		return fail(fmt.Errorf("compositor: %w: block message header", codec.ErrCorrupt))
	}
	rest := payload[off:]
	for i := uint64(0); i < nfrags; i++ {
		var vals [3]uint64
		for j := range vals {
			v, k := binary.Uvarint(rest)
			if k <= 0 {
				return fail(fmt.Errorf("compositor: %w: fragment header", codec.ErrCorrupt))
			}
			vals[j], rest = v, rest[k:]
		}
		n := vals[2]
		if uint64(len(rest)) < n {
			return fail(fmt.Errorf("compositor: %w: fragment length", codec.ErrCorrupt))
		}
		var buf []byte
		if pooled {
			buf = bufpool.Get(npix * raster.BytesPerPixel)
		}
		data, err := cdc.DecodeInto(buf, rest[:n], npix)
		if err != nil {
			bufpool.Put(buf)
			return fail(fmt.Errorf("compositor: decoding fragment: %w", err))
		}
		rest = rest[n:]
		incoming = append(incoming, fragstore.Fragment{
			Rng:  schedule.RankRange{Lo: int(vals[0]), Hi: int(vals[1])},
			Data: data,
		})
	}
	if len(rest) != 0 {
		return fail(fmt.Errorf("compositor: %w: %d trailing bytes in block message", codec.ErrCorrupt, len(rest)))
	}
	return incoming, nil
}

func send(c comm.Comm, st *fragstore.Store, cdc codec.Codec, rep *Report, tel *telemetry.Recorder, epoch, step int, tr schedule.Transfer, scr *runScratch) error {
	frags, err := st.Take(tr.Block)
	if err != nil {
		return err
	}
	need := 16
	for _, f := range frags {
		need += encBound(len(f.Data))
	}
	endEnc := tel.Span(rep.Rank, telemetry.PhaseEncode, telemetry.CatCompute, step)
	buf, raw, wire := EncodeFragmentsAppend(scr.reserveEnc(need), frags, cdc, &scr.fragEnc)
	endEnc()
	scr.enc = buf
	// The message holds a copy of the fragment data (append-style encoders
	// never alias their input), so the taken buffers recycle immediately.
	fragstore.ReleaseAll(frags)
	rep.RawBytes += raw
	rep.WireBytes += wire
	tel.AddStep(rep.Rank, step, telemetry.CtrMsgs, 1)
	tel.AddStep(rep.Rank, step, telemetry.CtrRawBytes, raw)
	tel.AddStep(rep.Rank, step, telemetry.CtrWireBytes, wire)
	endSend := tel.Span(rep.Rank, telemetry.PhaseSend, telemetry.CatNetwork, step)
	err = comm.SendCtx(c, tr.To, tagFor(epoch, step, tr.Block), buf,
		traceid.Context{Step: step, Tile: tr.Block.Tile, Epoch: epoch})
	endSend()
	return err
}

// parseEncodedFragments walks a block message's envelope — uvarint(count),
// then per fragment uvarint(lo), uvarint(hi), uvarint(len(enc)), enc —
// without decoding any pixels. The returned fragments alias payload, so the
// caller must not recycle payload until it is done with them. All failures
// wrap codec.ErrCorrupt.
func parseEncodedFragments(dst []fragstore.EncodedFragment, payload []byte) ([]fragstore.EncodedFragment, error) {
	nfrags, off := binary.Uvarint(payload)
	if off <= 0 {
		return nil, fmt.Errorf("compositor: %w: block message header", codec.ErrCorrupt)
	}
	rest := payload[off:]
	for i := uint64(0); i < nfrags; i++ {
		var vals [3]uint64
		for j := range vals {
			v, k := binary.Uvarint(rest)
			if k <= 0 {
				return nil, fmt.Errorf("compositor: %w: fragment header", codec.ErrCorrupt)
			}
			vals[j], rest = v, rest[k:]
		}
		n := vals[2]
		if uint64(len(rest)) < n {
			return nil, fmt.Errorf("compositor: %w: fragment length", codec.ErrCorrupt)
		}
		dst = append(dst, fragstore.EncodedFragment{
			Rng: schedule.RankRange{Lo: int(vals[0]), Hi: int(vals[1])},
			Enc: rest[:n:n],
		})
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("compositor: %w: %d trailing bytes in block message", codec.ErrCorrupt, len(rest))
	}
	return dst, nil
}

func merge(st *fragstore.Store, cdc codec.Codec, rep *Report, tel *telemetry.Recorder, step int, tr schedule.Transfer, payload []byte, scr *runScratch) error {
	endDec := tel.Span(rep.Rank, telemetry.PhaseDecode, telemetry.CatCompute, step)
	incoming, err := parseEncodedFragments(scr.encFrags[:0], payload)
	endDec()
	if err != nil {
		bufpool.Put(payload)
		return fmt.Errorf("block %v from rank %d: %w", tr.Block, tr.From, err)
	}
	scr.encFrags = incoming[:0]
	endMerge := tel.Span(rep.Rank, telemetry.PhaseMerge, telemetry.CatCompute, step)
	overPix, err := st.MergeEncoded(tr.Block, incoming, cdc)
	endMerge()
	// MergeEncoded never retains views into the wire payload, so the
	// fabric's receive buffer recycles here — on the corrupt path too.
	bufpool.Put(payload)
	if err != nil {
		return fmt.Errorf("block %v from rank %d: %w", tr.Block, tr.From, err)
	}
	rep.OverPixels += overPix
	tel.AddStep(rep.Rank, step, telemetry.CtrOverPixels, overPix)
	return nil
}

// encodeFinalBlocks serialises a rank's final blocks for the gather,
// appending to dst: uvarint block count, then per block uvarint
// tile/level/index followed by the raw composited pixels. Payloads travel
// raw: they are dense after compositing, and the paper's composition-time
// figures exclude the gather as a common cost across all methods.
func encodeFinalBlocks(dst []byte, st *fragstore.Store) []byte {
	blocks := st.Blocks()
	buf := binary.AppendUvarint(dst, uint64(len(blocks)))
	for _, b := range blocks {
		buf = binary.AppendUvarint(buf, uint64(b.Tile))
		buf = binary.AppendUvarint(buf, uint64(b.Level))
		buf = binary.AppendUvarint(buf, uint64(b.Index))
		buf = append(buf, st.Frags(b)[0].Data...)
	}
	return buf
}

// insertFinalBlocks parses one rank's gather payload into out and returns
// the pixels covered.
func insertFinalBlocks(out *raster.Image, tiles []raster.Span, part []byte, from int) (int, error) {
	nblocks, off := binary.Uvarint(part)
	if off <= 0 {
		return 0, fmt.Errorf("compositor: corrupt gather payload from rank %d", from)
	}
	rest := part[off:]
	covered := 0
	for i := uint64(0); i < nblocks; i++ {
		var vals [3]uint64
		for j := range vals {
			v, k := binary.Uvarint(rest)
			if k <= 0 {
				return covered, fmt.Errorf("compositor: corrupt gather block header from rank %d", from)
			}
			vals[j], rest = v, rest[k:]
		}
		b := schedule.Block{Tile: int(vals[0]), Level: int(vals[1]), Index: int(vals[2])}
		span := b.Span(tiles)
		n := span.Len() * raster.BytesPerPixel
		if len(rest) < n {
			return covered, fmt.Errorf("compositor: truncated gather block from rank %d", from)
		}
		out.InsertSpan(span, rest[:n])
		rest = rest[n:]
		covered += span.Len()
	}
	return covered, nil
}

// gather ships every rank's final blocks to root and assembles the final
// image there. With a compose-partial policy a rank whose blocks never
// arrive leaves its pixels blank and is counted in rep.MissingGathers
// instead of stalling the root forever; ranks already agreed dead are
// skipped outright.
func gather(c comm.Comm, st *fragstore.Store, rep *Report, opts Options, epoch int, dead []bool, w, h int, scr *runScratch) (*raster.Image, error) {
	root := opts.GatherRoot
	need := 16
	for _, b := range st.Blocks() {
		need += len(st.Frags(b)[0].Data) + 32
	}
	buf := encodeFinalBlocks(scr.reserveEnc(need), st)
	scr.enc = buf[:0:cap(buf)]
	if c.Rank() != root {
		if err := c.Send(root, gatherTag(epoch), buf); err != nil {
			if opts.OnMissing == ComposePartial && comm.IsRecoverable(err) {
				rep.Degraded = true
				rep.MissingGathers++
				return nil, nil
			}
			return nil, fmt.Errorf("compositor: gather send: %w", err)
		}
		return nil, nil
	}
	out := raster.New(w, h)
	covered := 0
	for r := 0; r < c.Size(); r++ {
		if dead != nil && dead[r] {
			continue
		}
		var part []byte
		if r == root {
			part = buf
		} else {
			timeout := opts.RecvTimeout
			if opts.Adaptive != nil {
				if d := opts.Adaptive.Deadline(gray.ClassGather, r); d > 0 {
					timeout = d
				}
			}
			recvT0 := time.Now()
			var err error
			part, err = c.RecvTimeout(r, gatherTag(epoch), timeout)
			if err != nil {
				if errors.Is(err, comm.ErrDeadline) {
					opts.Health.DeadlineMiss(r)
				}
				if opts.OnMissing == ComposePartial && comm.IsRecoverable(err) {
					rep.Degraded = true
					rep.MissingGathers++
					continue
				}
				return nil, fmt.Errorf("compositor: gather from rank %d: %w", r, err)
			}
			if opts.Adaptive != nil {
				opts.Adaptive.Observe(gray.ClassGather, r, time.Since(recvT0))
			}
			opts.Health.Ok(r)
		}
		n, err := insertFinalBlocks(out, st.Tiles(), part, r)
		if err != nil {
			return nil, err
		}
		if r != root {
			bufpool.Put(part) // InsertSpan copied the pixels out
		}
		covered += n
	}
	if covered != w*h && !rep.Degraded {
		return nil, fmt.Errorf("compositor: gathered blocks cover %d of %d pixels", covered, w*h)
	}
	return out, nil
}
