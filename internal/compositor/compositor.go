// Package compositor executes a composition schedule on real image data
// over any comm.Comm fabric: it stages the local partial image into blocks,
// ships and receives blocks step by step, composites received fragments in
// depth order with the "over" operator, and finally gathers the fully
// composited blocks to a root rank.
//
// The same executor runs every method — binary-swap, parallel-pipelined,
// direct-send and both rotate-tiling variants — because the methods differ
// only in their schedules.
package compositor

import (
	"encoding/binary"
	"fmt"

	"rtcomp/internal/codec"
	"rtcomp/internal/comm"
	"rtcomp/internal/fragstore"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
)

// Options configures a composition run.
type Options struct {
	// Codec compresses block payloads on the wire; nil means raw.
	Codec codec.Codec
	// GatherRoot is the rank that assembles the final image. Set to a
	// negative value to skip the gather (each rank keeps its final blocks).
	GatherRoot int
	// Broadcast, with a non-negative GatherRoot, redistributes the
	// assembled image from the root so every rank returns it — the
	// display-wall configuration.
	Broadcast bool
}

// Report summarises one rank's work during a composition.
type Report struct {
	Rank        int
	Comm        comm.Counters // traffic including the final gather
	OverPixels  int64         // pixels passed through the over kernel
	RawBytes    int64         // block payload bytes before compression
	WireBytes   int64         // block payload bytes after compression
	FinalBlocks int           // final blocks this rank owned before gather
}

// Run executes the schedule for this rank's partial image. On the gather
// root it returns the assembled final image; on other ranks (or when the
// gather is disabled) the image result is nil.
func Run(c comm.Comm, sched *schedule.Schedule, local *raster.Image, opts Options) (*raster.Image, *Report, error) {
	if c.Size() != sched.P {
		return nil, nil, fmt.Errorf("compositor: communicator has %d ranks, schedule wants %d", c.Size(), sched.P)
	}
	if opts.GatherRoot >= sched.P {
		return nil, nil, fmt.Errorf("compositor: gather root %d out of range", opts.GatherRoot)
	}
	cdc := opts.Codec
	if cdc == nil {
		cdc = codec.Raw{}
	}
	me := c.Rank()
	st := fragstore.New(me, sched, local)
	rep := &Report{Rank: me}

	for si, step := range sched.Steps {
		for h := 0; h < step.PreHalvings; h++ {
			st.HalveAll()
		}
		// Issue every send eagerly, then drain the receives in arrival
		// order (RecvAny): the fabric buffers, so a stepwise schedule
		// cannot deadlock, and arrival-order processing avoids
		// head-of-line blocking when several messages are outstanding.
		pending := map[comm.MsgKey]schedule.Transfer{}
		for _, tr := range step.Transfers {
			switch {
			case tr.From == me:
				if err := send(c, st, cdc, rep, si, tr); err != nil {
					return nil, nil, err
				}
			case tr.To == me:
				pending[comm.MsgKey{From: tr.From, Tag: tagFor(si, tr.Block)}] = tr
			}
		}
		keys := make([]comm.MsgKey, 0, len(pending))
		for k := range pending {
			keys = append(keys, k)
		}
		for len(pending) > 0 {
			from, tag, payload, err := c.RecvAny(keys)
			if err != nil {
				return nil, nil, err
			}
			key := comm.MsgKey{From: from, Tag: tag}
			tr, ok := pending[key]
			if !ok {
				return nil, nil, fmt.Errorf("compositor: unexpected message from rank %d tag %d", from, tag)
			}
			delete(pending, key)
			for i, k := range keys {
				if k == key {
					keys = append(keys[:i], keys[i+1:]...)
					break
				}
			}
			if err := merge(st, cdc, rep, tr, payload); err != nil {
				return nil, nil, err
			}
		}
		for h := 0; h < step.PostHalvings; h++ {
			st.HalveAll()
		}
	}

	if err := st.CheckComplete(sched.P); err != nil {
		return nil, nil, err
	}
	rep.FinalBlocks = st.Len()

	var final *raster.Image
	if opts.GatherRoot >= 0 {
		img, err := gather(c, st, opts.GatherRoot, local.W, local.H)
		if err != nil {
			return nil, nil, err
		}
		final = img
		if opts.Broadcast {
			var seq comm.Sequencer
			var payload []byte
			if c.Rank() == opts.GatherRoot {
				payload = img.Pix
			}
			data, err := comm.Bcast(c, &seq, opts.GatherRoot, payload)
			if err != nil {
				return nil, nil, err
			}
			if c.Rank() != opts.GatherRoot {
				final = raster.New(local.W, local.H)
				if len(data) != len(final.Pix) {
					return nil, nil, fmt.Errorf("compositor: broadcast image has %d bytes, want %d",
						len(data), len(final.Pix))
				}
				copy(final.Pix, data)
			}
		}
	}
	rep.Comm = c.Counters()
	return final, rep, nil
}

// tagFor packs (step, block) into a unique non-negative tag.
func tagFor(step int, b schedule.Block) int {
	return ((step+1)&0xFFFF)<<40 | (b.Tile&0xFFFF)<<24 | (b.Level&0xFF)<<16 | (b.Index & 0xFFFF)
}

// EncodeFragments serialises a fragment list with the given codec:
// uvarint(count), then per fragment uvarint(lo), uvarint(hi),
// uvarint(len(enc)), enc. It also reports the raw and encoded payload
// sizes. The format is shared with the virtual-time simulator so both
// account wire bytes identically.
func EncodeFragments(frags []fragstore.Fragment, cdc codec.Codec) (buf []byte, raw, wire int64) {
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { buf = append(buf, tmp[:binary.PutUvarint(tmp[:], v)]...) }
	put(uint64(len(frags)))
	for _, f := range frags {
		enc := cdc.Encode(f.Data)
		raw += int64(len(f.Data))
		wire += int64(len(enc))
		put(uint64(f.Rng.Lo))
		put(uint64(f.Rng.Hi))
		put(uint64(len(enc)))
		buf = append(buf, enc...)
	}
	return buf, raw, wire
}

// DecodeFragments inverts EncodeFragments for a block of npix pixels.
func DecodeFragments(payload []byte, cdc codec.Codec, npix int) ([]fragstore.Fragment, error) {
	nfrags, off := binary.Uvarint(payload)
	if off <= 0 {
		return nil, fmt.Errorf("compositor: corrupt block message header")
	}
	rest := payload[off:]
	incoming := make([]fragstore.Fragment, 0, nfrags)
	for i := uint64(0); i < nfrags; i++ {
		var vals [3]uint64
		for j := range vals {
			v, k := binary.Uvarint(rest)
			if k <= 0 {
				return nil, fmt.Errorf("compositor: corrupt fragment header")
			}
			vals[j], rest = v, rest[k:]
		}
		n := vals[2]
		if uint64(len(rest)) < n {
			return nil, fmt.Errorf("compositor: corrupt fragment length")
		}
		data, err := cdc.Decode(rest[:n], npix)
		if err != nil {
			return nil, fmt.Errorf("compositor: decoding fragment: %w", err)
		}
		rest = rest[n:]
		incoming = append(incoming, fragstore.Fragment{
			Rng:  schedule.RankRange{Lo: int(vals[0]), Hi: int(vals[1])},
			Data: data,
		})
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("compositor: %d trailing bytes in block message", len(rest))
	}
	return incoming, nil
}

func send(c comm.Comm, st *fragstore.Store, cdc codec.Codec, rep *Report, step int, tr schedule.Transfer) error {
	frags, err := st.Take(tr.Block)
	if err != nil {
		return err
	}
	buf, raw, wire := EncodeFragments(frags, cdc)
	rep.RawBytes += raw
	rep.WireBytes += wire
	return c.Send(tr.To, tagFor(step, tr.Block), buf)
}

func merge(st *fragstore.Store, cdc codec.Codec, rep *Report, tr schedule.Transfer, payload []byte) error {
	incoming, err := DecodeFragments(payload, cdc, st.Span(tr.Block).Len())
	if err != nil {
		return fmt.Errorf("block %v from rank %d: %w", tr.Block, tr.From, err)
	}
	overPix, err := st.Merge(tr.Block, incoming)
	if err != nil {
		return err
	}
	rep.OverPixels += overPix
	return nil
}

// gather ships every rank's final blocks to root and assembles the final
// image there. Block payloads travel raw: they are dense after compositing,
// and the paper's composition-time figures exclude the gather as a common
// cost across all methods.
func gather(c comm.Comm, st *fragstore.Store, root, w, h int) (*raster.Image, error) {
	var seq comm.Sequencer
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { buf = append(buf, tmp[:binary.PutUvarint(tmp[:], v)]...) }
	blocks := st.Blocks()
	put(uint64(len(blocks)))
	for _, b := range blocks {
		put(uint64(b.Tile))
		put(uint64(b.Level))
		put(uint64(b.Index))
		buf = append(buf, st.Frags(b)[0].Data...)
	}
	parts, err := comm.Gather(c, &seq, root, buf)
	if err != nil {
		return nil, err
	}
	if c.Rank() != root {
		return nil, nil
	}
	out := raster.New(w, h)
	covered := 0
	for r, part := range parts {
		nblocks, off := binary.Uvarint(part)
		if off <= 0 {
			return nil, fmt.Errorf("compositor: corrupt gather payload from rank %d", r)
		}
		rest := part[off:]
		for i := uint64(0); i < nblocks; i++ {
			var vals [3]uint64
			for j := range vals {
				v, k := binary.Uvarint(rest)
				if k <= 0 {
					return nil, fmt.Errorf("compositor: corrupt gather block header from rank %d", r)
				}
				vals[j], rest = v, rest[k:]
			}
			b := schedule.Block{Tile: int(vals[0]), Level: int(vals[1]), Index: int(vals[2])}
			span := b.Span(st.Tiles())
			n := span.Len() * raster.BytesPerPixel
			if len(rest) < n {
				return nil, fmt.Errorf("compositor: truncated gather block from rank %d", r)
			}
			out.InsertSpan(span, rest[:n])
			rest = rest[n:]
			covered += span.Len()
		}
	}
	if covered != w*h {
		return nil, fmt.Errorf("compositor: gathered blocks cover %d of %d pixels", covered, w*h)
	}
	return out, nil
}
