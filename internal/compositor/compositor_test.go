package compositor

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rtcomp/internal/codec"
	"rtcomp/internal/comm"
	"rtcomp/internal/compose"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/transport/inproc"
	"rtcomp/internal/transport/tcpnet"
)

// runInproc composites the given layers with a schedule on the in-process
// fabric and returns the gathered final image from rank 0.
func runInproc(t *testing.T, sched *schedule.Schedule, layers []*raster.Image, cdc codec.Codec) *raster.Image {
	t.Helper()
	var mu sync.Mutex
	var final *raster.Image
	err := inproc.Run(sched.P, func(c comm.Comm) error {
		img, _, err := Run(c, sched, layers[c.Rank()], Options{Codec: cdc, GatherRoot: 0})
		if err != nil {
			return err
		}
		if img != nil {
			mu.Lock()
			final = img
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final == nil {
		t.Fatal("no final image gathered")
	}
	return final
}

func makeLayers(rng *rand.Rand, p, w, h int, binary bool) []*raster.Image {
	layers := make([]*raster.Image, p)
	for r := range layers {
		if binary {
			layers[r] = raster.RandomBinaryImage(rng, w, h, 0.55)
		} else {
			layers[r] = raster.RandomImage(rng, w, h, 0.45)
		}
	}
	return layers
}

type method struct {
	name  string
	build func(p int) (*schedule.Schedule, error)
	okFor func(p int) bool
}

func methods() []method {
	return []method{
		{"direct-send", schedule.DirectSend, func(int) bool { return true }},
		{"binary-swap", schedule.BinarySwap, schedule.IsPowerOfTwo},
		{"pipeline", schedule.Pipeline, func(int) bool { return true }},
		{"rt-n2", func(p int) (*schedule.Schedule, error) { return schedule.RT(p, 2) }, func(int) bool { return true }},
		{"rt-n3", func(p int) (*schedule.Schedule, error) { return schedule.RT(p, 3) }, func(int) bool { return true }},
		{"rt-n4", func(p int) (*schedule.Schedule, error) { return schedule.RT(p, 4) }, func(int) bool { return true }},
		{"tree", schedule.Tree, func(int) bool { return true }},
		{"radixk", func(p int) (*schedule.Schedule, error) {
			factors, err := schedule.DefaultFactors(p)
			if err != nil {
				return nil, err
			}
			return schedule.RadixK(p, factors)
		}, schedule.IsPowerOfTwo},
	}
}

// With binary alpha the u8 over operator is exactly associative, so every
// method with every codec must reproduce the serial composite byte for
// byte. This is the end-to-end analogue of schedule.Validate.
func TestAllMethodsExactWithBinaryAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, p := range []int{2, 3, 4, 5, 8} {
		layers := makeLayers(rng, p, 37, 11, true)
		want := compose.SerialComposite(layers)
		for _, m := range methods() {
			if !m.okFor(p) {
				continue
			}
			sched, err := m.build(p)
			if err != nil {
				t.Fatalf("%s(p=%d): %v", m.name, p, err)
			}
			for _, cname := range codec.Names() {
				cdc, _ := codec.ByName(cname)
				got := runInproc(t, sched, layers, cdc)
				if !raster.Equal(got, want) {
					t.Fatalf("%s/%s p=%d: image differs from serial composite (maxdiff %d)",
						m.name, cname, p, raster.MaxDiff(got, want))
				}
			}
		}
	}
}

// With general alpha, different association orders differ only by
// quantisation; all methods must stay within a small tolerance of the
// float reference.
func TestAllMethodsToleranceWithGeneralAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	p := 6
	layers := makeLayers(rng, p, 64, 16, false)
	want := compose.SerialCompositeF(layers)
	for _, m := range methods() {
		if !m.okFor(p) {
			continue
		}
		sched, err := m.build(p)
		if err != nil {
			t.Fatal(err)
		}
		got := runInproc(t, sched, layers, codec.TRLE{})
		if d := raster.MaxDiff(got, want); d > 3 {
			t.Fatalf("%s: max diff %d vs float reference", m.name, d)
		}
	}
}

func TestRealisticPartialImages(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	p := 8
	layers := make([]*raster.Image, p)
	for r := range layers {
		layers[r] = raster.PartialImage(rng, 96, 64, r, p)
	}
	want := compose.SerialComposite(layers)
	sched, err := schedule.RT(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := runInproc(t, sched, layers, codec.TRLE{})
	if d := raster.MaxDiff(got, want); d > 3 {
		t.Fatalf("max diff %d", d)
	}
}

func TestSingleRank(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	layers := makeLayers(rng, 1, 16, 16, false)
	sched, err := schedule.RT(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := runInproc(t, sched, layers, nil)
	if !raster.Equal(got, layers[0]) {
		t.Fatal("single-rank composition must be the identity")
	}
}

func TestNoGather(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	p := 4
	layers := makeLayers(rng, p, 16, 16, true)
	sched, _ := schedule.BinarySwap(p)
	err := inproc.Run(p, func(c comm.Comm) error {
		img, rep, err := Run(c, sched, layers[c.Rank()], Options{GatherRoot: -1})
		if err != nil {
			return err
		}
		if img != nil {
			return fmt.Errorf("image returned with gather disabled")
		}
		if rep.FinalBlocks == 0 {
			return fmt.Errorf("rank %d holds no final blocks", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReportAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	p := 4
	layers := make([]*raster.Image, p)
	for r := range layers {
		layers[r] = raster.PartialImage(rng, 64, 64, r, p) // sparse
	}
	sched, _ := schedule.RT(p, 2)
	reports := make([]*Report, p)
	err := inproc.Run(p, func(c comm.Comm) error {
		_, rep, err := Run(c, sched, layers[c.Rank()], Options{Codec: codec.TRLE{}, GatherRoot: 0})
		reports[c.Rank()] = rep
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	var raw, wire, over int64
	for _, rep := range reports {
		raw += rep.RawBytes
		wire += rep.WireBytes
		over += rep.OverPixels
	}
	if raw == 0 || wire == 0 {
		t.Fatal("no traffic recorded")
	}
	if wire >= raw {
		t.Fatalf("TRLE did not compress sparse partials: wire %d >= raw %d", wire, raw)
	}
	if over == 0 {
		t.Fatal("no compositing recorded")
	}
	// Symbolic census agrees on the compositing volume (which is
	// codec-independent).
	census, err := schedule.Validate(sched, 64*64)
	if err != nil {
		t.Fatal(err)
	}
	if census.TotalOverPixels() != over {
		t.Fatalf("census over pixels %d != measured %d", census.TotalOverPixels(), over)
	}
}

// The same composition over the TCP fabric must produce the identical
// image and identical raw traffic as the in-process fabric.
func TestTCPFabricEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	p := 4
	layers := makeLayers(rng, p, 32, 32, false)
	sched, err := schedule.RT(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := runInproc(t, sched, layers, codec.RLE{})

	lns, addrs, err := tcpnet.ListenLoopback(p)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got *raster.Image
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep, err := tcpnet.Start(tcpnet.Config{Rank: r, Addrs: addrs, Listener: lns[r], DialTimeout: 10 * time.Second})
			if err != nil {
				errs[r] = err
				return
			}
			defer ep.Close()
			img, _, err := Run(ep, sched, layers[r], Options{Codec: codec.RLE{}, GatherRoot: 0})
			if err != nil {
				errs[r] = err
				return
			}
			if img != nil {
				mu.Lock()
				got = img
				mu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if got == nil {
		t.Fatal("no image over TCP")
	}
	if !raster.Equal(got, want) {
		t.Fatal("TCP and in-process fabrics disagree")
	}
}

func TestMismatchedCommSize(t *testing.T) {
	sched, _ := schedule.BinarySwap(4)
	err := inproc.Run(2, func(c comm.Comm) error {
		_, _, err := Run(c, sched, raster.New(8, 8), Options{GatherRoot: 0})
		if err == nil {
			return fmt.Errorf("mismatched size accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLargerSweepRT(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in short mode")
	}
	rng := rand.New(rand.NewSource(49))
	for _, p := range []int{7, 9, 12, 16} {
		layers := makeLayers(rng, p, 40, 10, true)
		want := compose.SerialComposite(layers)
		for n := 1; n <= 5; n++ {
			sched, err := schedule.RT(p, n)
			if err != nil {
				t.Fatal(err)
			}
			got := runInproc(t, sched, layers, codec.TRLE{})
			if !raster.Equal(got, want) {
				t.Fatalf("RT(%d,%d) differs from serial composite", p, n)
			}
		}
	}
}

// A rank dying mid-composition must surface as an error on the peers that
// wait for it — never a hang.
func TestDeadRankFailsCleanlyOverTCP(t *testing.T) {
	p := 3
	rng := rand.New(rand.NewSource(50))
	layers := makeLayers(rng, p, 16, 16, true)
	sched, err := schedule.RT(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	lns, addrs, err := tcpnet.ListenLoopback(p)
	if err != nil {
		t.Fatal(err)
	}
	results := make(chan error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep, err := tcpnet.Start(tcpnet.Config{Rank: r, Addrs: addrs, Listener: lns[r], DialTimeout: 10 * time.Second})
			if err != nil {
				results <- err
				return
			}
			if r == 2 {
				// Die immediately after the mesh is up.
				ep.Close()
				results <- nil
				return
			}
			defer ep.Close()
			_, _, err = Run(ep, sched, layers[r], Options{GatherRoot: 0})
			results <- err
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("composition hung after rank death")
	}
	close(results)
	failures := 0
	for err := range results {
		if err != nil {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("no surviving rank reported the dead peer")
	}
}

func TestBroadcastGivesEveryRankTheImage(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	p := 5
	layers := makeLayers(rng, p, 24, 24, true)
	want := compose.SerialComposite(layers)
	sched, err := schedule.RT(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]*raster.Image, p)
	err = inproc.Run(p, func(c comm.Comm) error {
		img, _, err := Run(c, sched, layers[c.Rank()],
			Options{GatherRoot: 1, Broadcast: true})
		if err != nil {
			return err
		}
		got[c.Rank()] = img
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, img := range got {
		if img == nil {
			t.Fatalf("rank %d received no image", r)
		}
		if !raster.Equal(img, want) {
			t.Fatalf("rank %d image differs from serial composite", r)
		}
	}
}
