// Per-tile decomposition of a composition schedule. Blocks never change
// tile — Halves() preserves the Tile coordinate and transfers address whole
// blocks — so a schedule partitions cleanly into independent per-tile step
// sequences: tile t's pipeline is exactly the synchronous step loop
// restricted to the transfers whose block lives in tile t. The pipelined
// executor (pipeline.go) runs these restricted sequences concurrently.
package compositor

import (
	"fmt"
	"sort"
	"time"

	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
)

// DefaultPipelineWindow is the in-flight tile window when
// PipelineConfig.Window is zero: enough tiles to keep render, encode and
// transfer overlapped without staging the whole frame at once.
const DefaultPipelineWindow = 4

// DefaultGatherWindow is the progressive-gather credit window when
// PipelineConfig.GatherWindow is zero: each rank may have this many
// unacknowledged completed-tile messages in flight to the root.
const DefaultGatherWindow = 2

// Source exposes an incrementally rendered local sub-image to the pipelined
// compositor, so composition of early tiles overlaps rendering of later
// ones. WaitTile blocks until the local pixels covering the tile's span are
// final; it is called from multiple worker goroutines and must be safe for
// concurrent use. A nil Source means the local image is already complete.
type Source interface {
	WaitTile(tile int, span raster.Span) error
}

// PartialFrame is one progressively delivered tile of the final image,
// passed to PipelineConfig.OnPartial on the gather root as the tile's last
// contribution arrives. Pix is borrowed from the frame under assembly and
// is only valid during the callback; Done counts tiles delivered so far
// (including this one) out of Total.
type PartialFrame struct {
	Tile  int
	Span  raster.Span
	Pix   []byte
	Done  int
	Total int
}

// PipelineConfig switches the compositor from the bulk-synchronous step
// loop to the message-driven per-tile pipeline and tunes its windows. The
// configuration must be identical on every rank of a run (like the schedule
// and the codec): the windows shape the credit protocol and the tag space.
type PipelineConfig struct {
	// Enabled selects the pipelined executor. The synchronous path remains
	// the default — and the differential oracle the pipelined output is
	// byte-compared against in the tests.
	Enabled bool
	// Window bounds how many tiles one rank advances concurrently. Zero
	// means DefaultPipelineWindow; negative means no bound (every tile in
	// flight at once). Values above the schedule's tile count are clamped.
	Window int
	// GatherWindow bounds how many completed tiles a rank may have in
	// flight to the gather root before a credit from the root must arrive —
	// backpressure so a fast rank cannot swamp the root. Zero means
	// DefaultGatherWindow; negative means no bound.
	GatherWindow int
	// InterleaveSeed, when non-zero, inserts a deterministic reordering
	// stage in front of message dispatch: concurrently in-flight messages
	// are released in an order that is a pure function of (seed, source,
	// tag). The differential test harness sweeps seeds to prove the output
	// does not depend on delivery order. Zero disables reordering.
	InterleaveSeed int64
	// Source gates each tile's staging on its pixels being rendered,
	// overlapping composition with rendering. Nil means the local image
	// passed to Run is already complete.
	Source Source
	// OnPartial, on the gather root, is called as each tile of the final
	// image completes — progressive frame delivery. Callbacks are monotone:
	// every completed tile is delivered exactly once, before Run returns
	// (under PartialBlock; PartialDrop trades that guarantee for immunity
	// to a wedged consumer). Callbacks run on a dedicated delivery
	// goroutine, never on the assembler, so a slow consumer cannot stall
	// tile dispatch; frames hand off through a bounded buffer whose
	// overflow behavior PartialPolicy selects. Degraded tiles (missing
	// contributions under ComposePartial) are not delivered progressively;
	// they appear only in the final image.
	OnPartial func(PartialFrame)
	// PartialPolicy selects what happens when the OnPartial delivery
	// buffer is full — i.e. when the consumer lags the assembler.
	PartialPolicy PartialPolicy
	// PartialBuffer bounds the OnPartial delivery buffer in frames. Zero
	// means one slot per tile — under PartialBlock the assembler then
	// never blocks on the consumer, and the delivery drain happens once,
	// before Run returns.
	PartialBuffer int
	// Hedge enables speculative tile hedging: when a transfer is overdue
	// by the hedge threshold, the waiting rank requests a byte-identical
	// reconstruction from the sender's buddy replica and merges whichever
	// copy arrives first (the loser is dropped). See hedge.go.
	Hedge HedgeConfig
}

// PartialPolicy selects the OnPartial buffer-overflow behavior.
type PartialPolicy int

const (
	// PartialBlock (the default) never drops a frame: when the buffer is
	// full the publisher waits for the consumer, and Run does not return
	// until every published frame has been delivered. A permanently stuck
	// consumer therefore stalls Run — the same exposure the old inline
	// callbacks had, now isolated from tile dispatch.
	PartialBlock PartialPolicy = iota
	// PartialDrop never blocks on the consumer: frames that find the
	// buffer full are dropped (counted under partial_drops) and Run does
	// not wait for a wedged consumer on exit. The final image is always
	// complete regardless; only progressive previews are lossy.
	PartialDrop
)

// HedgeConfig tunes speculative tile hedging in the pipelined executor.
// Like the rest of PipelineConfig it must match across all ranks of a run
// (the hedge request/reply tags become part of the expected message sets).
type HedgeConfig struct {
	// Enabled turns hedging on. Requires P >= 2; under the FailFast and
	// ComposePartial policies the pipelined run performs its own buddy
	// replica exchange up front, under Recover it reuses the recovery
	// replicas already in hand.
	Enabled bool
	// Threshold is how long a transfer may be overdue before its receiver
	// requests the buddy's reconstruction. Zero derives the threshold from
	// the adaptive estimator when one is configured (a quarter of the
	// peer's deadline), falling back to DefaultHedgeThreshold.
	Threshold time.Duration
}

// DefaultHedgeThreshold is the hedge trigger when neither HedgeConfig nor
// an adaptive estimator provides one.
const DefaultHedgeThreshold = 25 * time.Millisecond

// window resolves the configured in-flight window against a tile count.
func (cfg PipelineConfig) window(tiles int) int {
	w := cfg.Window
	if w == 0 {
		w = DefaultPipelineWindow
	}
	if w < 0 || w > tiles {
		w = tiles
	}
	if w < 1 {
		w = 1
	}
	return w
}

// gatherWindow resolves the credit window against this rank's total number
// of progressive gather sends.
func (cfg PipelineConfig) gatherWindow(sends int) int {
	gw := cfg.GatherWindow
	if gw == 0 {
		gw = DefaultGatherWindow
	}
	if gw < 0 || gw > sends {
		gw = sends
	}
	if gw < 1 {
		gw = 1
	}
	return gw
}

// Reserved pipelined-path tags, epoch-scoped like every other tag. Step
// tags always carry step+1 >= 1 in bits 40+, and the recovery/gather tags
// (tagGatherFinal, tagReplica, tagCommitImg) set bit 39, so bits 37 and 38
// are free regions below them.
const (
	tagTileGatherBase = 1 << 38 // | tile: one completed tile's final blocks
	tagCreditBase     = 1 << 37 // | seq: progressive-gather flow-control credit
)

// tileGatherTag addresses one completed tile's progressive gather message.
func tileGatherTag(epoch, tile int) int {
	return epoch<<56 | tagTileGatherBase | (tile & 0xFFFF)
}

// creditTag addresses the seq-th gather credit the root grants a rank.
// Sequencing the tag keeps every (source, tag) pair unique per epoch.
func creditTag(epoch, seq int) int {
	return epoch<<56 | tagCreditBase | (seq & 0xFFFF)
}

// tileStep is the slice of one schedule step that touches a single tile:
// the halvings (which apply to whatever the tile's store holds) plus the
// step's transfers restricted to blocks of that tile.
type tileStep struct {
	step  int // 0-based schedule step index
	pre   int // halvings before the transfers
	post  int // halvings after the transfers
	sends []schedule.Transfer
	recvs []schedule.Transfer
}

// tilePlans splits a schedule into per-tile step sequences for one rank.
// Executing plan[t] against a store staged with NewTile(t) performs exactly
// the tile-t portion of the synchronous step loop.
func tilePlans(sched *schedule.Schedule, me int) [][]tileStep {
	plans := make([][]tileStep, sched.Tiles)
	for t := range plans {
		steps := make([]tileStep, len(sched.Steps))
		for si, step := range sched.Steps {
			ts := tileStep{step: si, pre: step.PreHalvings, post: step.PostHalvings}
			for _, tr := range step.Transfers {
				if tr.Block.Tile != t {
					continue
				}
				switch {
				case tr.From == me:
					ts.sends = append(ts.sends, tr)
				case tr.To == me:
					ts.recvs = append(ts.recvs, tr)
				}
			}
			steps[si] = ts
		}
		plans[t] = steps
	}
	return plans
}

// finalTileHolders simulates the schedule's block flow and reports, for
// every tile, the sorted set of ranks left holding at least one of its
// blocks when the schedule completes — the contributors the progressive
// gather expects for that tile. The simulation mirrors the executor: a
// transfer moves the whole block from sender to receiver; halvings replace
// every held block by its two children.
func finalTileHolders(sched *schedule.Schedule) ([][]int, error) {
	held := make([]map[schedule.Block]bool, sched.P)
	for r := range held {
		held[r] = make(map[schedule.Block]bool, sched.Tiles)
		for t := 0; t < sched.Tiles; t++ {
			held[r][schedule.Block{Tile: t}] = true
		}
	}
	halve := func(h map[schedule.Block]bool) map[schedule.Block]bool {
		next := make(map[schedule.Block]bool, 2*len(h))
		for b := range h {
			c0, c1 := b.Halves()
			next[c0], next[c1] = true, true
		}
		return next
	}
	for si, step := range sched.Steps {
		for r := range held {
			for i := 0; i < step.PreHalvings; i++ {
				held[r] = halve(held[r])
			}
		}
		for _, tr := range step.Transfers {
			if !held[tr.From][tr.Block] {
				return nil, fmt.Errorf("compositor: step %d: rank %d does not hold block %v",
					si+1, tr.From, tr.Block)
			}
			delete(held[tr.From], tr.Block)
			held[tr.To][tr.Block] = true
		}
		for r := range held {
			for i := 0; i < step.PostHalvings; i++ {
				held[r] = halve(held[r])
			}
		}
	}
	holders := make([][]int, sched.Tiles)
	for r, h := range held {
		seen := make([]bool, sched.Tiles)
		for b := range h {
			if !seen[b.Tile] {
				seen[b.Tile] = true
				holders[b.Tile] = append(holders[b.Tile], r)
			}
		}
	}
	for t := range holders {
		sort.Ints(holders[t])
	}
	return holders, nil
}
