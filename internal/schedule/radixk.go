package schedule

import "fmt"

// RadixK builds the radix-k composition schedule (Peterka et al.), the
// modern generalisation of binary-swap that this repository includes as an
// extension baseline: the processor count is factored into rounds, and in
// round i groups of factors[i] processors split their current region
// factors[i] ways and exchange the pieces directly within the group.
// Binary-swap is RadixK with all factors 2; a single round of factor P is
// direct-send among power-of-two ranks.
//
// Because the block algebra of this package subdivides regions by halving,
// every factor must be a power of two (hence P a power of two). Groups are
// formed over contiguous rank intervals with stride factors[1]*...*
// factors[i-1], which keeps every merge depth-contiguous, so the schedule
// is correct for the non-commutative over operator (Validate proves it).
func RadixK(p int, factors []int) (*Schedule, error) {
	if p < 1 {
		return nil, fmt.Errorf("schedule: RadixK needs p >= 1, got %d", p)
	}
	prod := 1
	for _, k := range factors {
		if k < 2 || !IsPowerOfTwo(k) {
			return nil, fmt.Errorf("schedule: RadixK factor %d is not a power of two >= 2", k)
		}
		prod *= k
	}
	if prod != p {
		return nil, fmt.Errorf("schedule: RadixK factors %v multiply to %d, want %d", factors, prod, p)
	}
	sched := &Schedule{Name: fmt.Sprintf("radix-k%v", factors), P: p, Tiles: 1}

	idx := make([]int, p) // block index at the current level per rank
	stride := 1
	level := 0
	for _, k := range factors {
		j := CeilLog2(k) // halvings this round
		level += j
		st := Step{PreHalvings: j}
		for r := 0; r < p; r++ {
			pos := (r / stride) % k // position within the round's group
			base := r - pos*stride  // group's first rank
			// After j halvings this rank's chunk is the k children
			// idx*k .. idx*k+k-1 at the new level; position u keeps child
			// u and receives it from every other member; this rank sends
			// every other child to its keeper.
			for u := 0; u < k; u++ {
				if u == pos {
					continue
				}
				st.Transfers = append(st.Transfers, Transfer{
					From:  r,
					To:    base + u*stride,
					Block: Block{Tile: 0, Level: level, Index: idx[r]*k + u},
				})
			}
		}
		for r := 0; r < p; r++ {
			pos := (r / stride) % k
			idx[r] = idx[r]*k + pos
		}
		stride *= k
		sched.Steps = append(sched.Steps, st)
	}
	return sched, nil
}

// DefaultFactors returns a balanced radix-k factorisation of a
// power-of-two p: factors of 4 while possible, a final 2 if needed.
func DefaultFactors(p int) ([]int, error) {
	if !IsPowerOfTwo(p) || p < 2 {
		return nil, fmt.Errorf("schedule: DefaultFactors needs a power of two >= 2, got %d", p)
	}
	var out []int
	for p > 1 {
		if p%4 == 0 {
			out = append(out, 4)
			p /= 4
		} else {
			out = append(out, 2)
			p /= 2
		}
	}
	return out, nil
}
