package schedule

import (
	"fmt"
	"strings"
	"testing"

	"rtcomp/internal/raster"
)

const testPix = 4096

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5, 32: 5, 33: 6}
	for p, want := range cases {
		if got := CeilLog2(p); got != want {
			t.Errorf("CeilLog2(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 1024} {
		if !IsPowerOfTwo(p) {
			t.Errorf("IsPowerOfTwo(%d) = false", p)
		}
	}
	for _, p := range []int{0, -2, 3, 6, 12, 100} {
		if IsPowerOfTwo(p) {
			t.Errorf("IsPowerOfTwo(%d) = true", p)
		}
	}
}

func TestBlockSpanPartition(t *testing.T) {
	tiles := raster.SplitSpan(raster.Span{Lo: 0, Hi: 1001}, 3)
	for level := 0; level <= 4; level++ {
		at := 0
		for tile := 0; tile < 3; tile++ {
			for idx := 0; idx < 1<<uint(level); idx++ {
				sp := (Block{Tile: tile, Level: level, Index: idx}).Span(tiles)
				if sp.Lo != at {
					t.Fatalf("level %d: block (%d,%d) starts at %d, want %d", level, tile, idx, sp.Lo, at)
				}
				at = sp.Hi
			}
		}
		if at != 1001 {
			t.Fatalf("level %d covers %d pixels, want 1001", level, at)
		}
	}
}

func TestBlockHalvesAreChildSpans(t *testing.T) {
	tiles := raster.SplitSpan(raster.Span{Lo: 0, Hi: 777}, 4)
	b := Block{Tile: 2, Level: 1, Index: 1}
	c0, c1 := b.Halves()
	sp := b.Span(tiles)
	s0, s1 := c0.Span(tiles), c1.Span(tiles)
	if s0.Lo != sp.Lo || s0.Hi != s1.Lo || s1.Hi != sp.Hi {
		t.Fatalf("children %v,%v do not tile parent %v", s0, s1, sp)
	}
}

func TestBinarySwapValidates(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64} {
		s, err := BinarySwap(p)
		if err != nil {
			t.Fatalf("BinarySwap(%d): %v", p, err)
		}
		if got, want := s.NumSteps(), CeilLog2(p); got != want {
			t.Fatalf("BinarySwap(%d) has %d steps, want %d", p, got, want)
		}
		if _, err := Validate(s, testPix); err != nil {
			t.Fatalf("BinarySwap(%d): %v", p, err)
		}
	}
}

func TestBinarySwapRejectsNonPowerOfTwo(t *testing.T) {
	for _, p := range []int{3, 5, 6, 7, 12, 33} {
		if _, err := BinarySwap(p); err == nil {
			t.Fatalf("BinarySwap(%d) accepted", p)
		}
	}
}

func TestPipelineValidates(t *testing.T) {
	for p := 1; p <= 17; p++ {
		s, err := Pipeline(p)
		if err != nil {
			t.Fatalf("Pipeline(%d): %v", p, err)
		}
		if got := s.NumSteps(); got != p-1 && !(p == 1 && got == 0) {
			t.Fatalf("Pipeline(%d) has %d steps, want %d", p, got, p-1)
		}
		if _, err := Validate(s, testPix); err != nil {
			t.Fatalf("Pipeline(%d): %v", p, err)
		}
	}
}

func TestDirectSendValidates(t *testing.T) {
	for p := 1; p <= 17; p++ {
		s, err := DirectSend(p)
		if err != nil {
			t.Fatalf("DirectSend(%d): %v", p, err)
		}
		c, err := Validate(s, testPix)
		if err != nil {
			t.Fatalf("DirectSend(%d): %v", p, err)
		}
		if got, want := c.TotalMessages(), p*(p-1); got != want {
			t.Fatalf("DirectSend(%d): %d messages, want %d", p, got, want)
		}
	}
}

// The central property: every rotate-tiling schedule is a correct
// composition for a wide sweep of processor and block counts.
func TestRTValidatesAcrossDomain(t *testing.T) {
	for p := 1; p <= 24; p++ {
		for n := 1; n <= 8; n++ {
			s, err := RT(p, n)
			if err != nil {
				t.Fatalf("RT(%d,%d): %v", p, n, err)
			}
			if got, want := s.NumSteps(), CeilLog2(p); got != want {
				t.Fatalf("RT(%d,%d) has %d steps, want ceil(log2 P) = %d", p, n, got, want)
			}
			if _, err := Validate(s, testPix); err != nil {
				t.Fatalf("RT(%d,%d): %v", p, n, err)
			}
		}
	}
}

func TestRTLargeP(t *testing.T) {
	for _, pn := range [][2]int{{32, 3}, {32, 4}, {31, 4}, {33, 2}, {64, 6}, {100, 4}} {
		s, err := RT(pn[0], pn[1])
		if err != nil {
			t.Fatalf("RT(%v): %v", pn, err)
		}
		if _, err := Validate(s, 512*512); err != nil {
			t.Fatalf("RT(%v): %v", pn, err)
		}
	}
}

// At step k every RT message carries a block of halving level k-1, i.e.
// A/(N*2^(k-1)) pixels — the paper's Table 1 block size.
func TestRTBlockSizesMatchTable1(t *testing.T) {
	s, err := RT(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	for si, step := range s.Steps {
		for _, tr := range step.Transfers {
			if tr.Block.Level != si {
				t.Fatalf("step %d transfer has block level %d, want %d", si+1, tr.Block.Level, si)
			}
		}
	}
}

// Every processor must end up holding part of the final image whenever
// there are at least P final blocks — the "fully utilize all available
// processors" property (the paper's Figure 1 ends with final blocks on all
// three processors for P=3, N=4).
func TestRTAllProcessorsHoldFinalBlocks(t *testing.T) {
	for _, pn := range [][2]int{{3, 4}, {4, 3}, {5, 2}, {7, 4}, {32, 3}, {32, 4}, {12, 2}} {
		p, n := pn[0], pn[1]
		s, err := RT(p, n)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Validate(s, 512*512)
		if err != nil {
			t.Fatal(err)
		}
		finalBlocks := n << uint(maxInt(CeilLog2(p)-1, 0))
		if finalBlocks < p {
			continue
		}
		owners := map[int]int{}
		for _, h := range c.Final {
			owners[h.Rank]++
		}
		if len(owners) != p {
			t.Fatalf("RT(%d,%d): only %d of %d ranks hold final blocks", p, n, len(owners), p)
		}
		// Balance: no rank holds more than twice the fair share (+1).
		fair := (finalBlocks + p - 1) / p
		for r, cnt := range owners {
			if cnt > 2*fair+1 {
				t.Fatalf("RT(%d,%d): rank %d holds %d final blocks, fair share %d", p, n, r, cnt, fair)
			}
		}
	}
}

func TestRTFinalBlockCountMatchesPaper(t *testing.T) {
	// Figure 1: P=3, N=4 -> two steps, 8 final blocks.
	s, err := RT(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Validate(s, testPix)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Steps) != 2 {
		t.Fatalf("RT(3,4) steps = %d, want 2", len(s.Steps))
	}
	if len(c.Final) != 8 {
		t.Fatalf("RT(3,4) final blocks = %d, want 8", len(c.Final))
	}
	// Figure 2: P=4, N=3 -> two steps, 6 final blocks.
	s, err = RT(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err = Validate(s, testPix)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Steps) != 2 || len(c.Final) != 6 {
		t.Fatalf("RT(4,3): steps=%d final=%d, want 2 and 6", len(s.Steps), len(c.Final))
	}
}

func TestNRTDomain(t *testing.T) {
	if _, err := NRT(3, 4); err == nil {
		t.Fatal("N_RT must reject odd P")
	}
	if _, err := NRT(4, 3); err != nil {
		t.Fatalf("N_RT(4,3): %v", err)
	}
	if _, err := TwoNRT(3, 3); err == nil {
		t.Fatal("2N_RT must reject odd N")
	}
	if _, err := TwoNRT(3, 4); err != nil {
		t.Fatalf("2N_RT(3,4): %v", err)
	}
}

func TestBinarySwapCensusBytes(t *testing.T) {
	p := 8
	s, _ := BinarySwap(p)
	c, err := Validate(s, testPix)
	if err != nil {
		t.Fatal(err)
	}
	// Each rank sends A/2 + A/4 + A/8 pixels = A*(1-1/P); two bytes per pixel.
	want := int64(p) * int64(float64(testPix)*(1-1.0/float64(p))) * raster.BytesPerPixel
	got := c.TotalBytes()
	if got < want-64 || got > want+64 {
		t.Fatalf("BS census bytes = %d, want ~%d", got, want)
	}
	if got := c.TotalMessages(); got != p*CeilLog2(p) {
		t.Fatalf("BS census messages = %d, want %d", got, p*CeilLog2(p))
	}
}

// The pipeline's dual-fragment wrap costs at most 2x the nominal tile
// traffic; its census must sit between the nominal and the doubled volume.
func TestPipelineCensusBounds(t *testing.T) {
	p := 6
	s, _ := Pipeline(p)
	c, err := Validate(s, testPix)
	if err != nil {
		t.Fatal(err)
	}
	nominal := int64(p*(p-1)) * int64(testPix/p) * raster.BytesPerPixel
	got := c.TotalBytes()
	if got < nominal || got > 2*nominal {
		t.Fatalf("PP census bytes = %d, want within [%d, %d]", got, nominal, 2*nominal)
	}
}

func TestValidateCatchesBadSchedules(t *testing.T) {
	// A transfer of a block the sender does not hold.
	bad := &Schedule{Name: "bad", P: 2, Tiles: 1, Steps: []Step{{
		Transfers: []Transfer{{From: 0, To: 1, Block: Block{Tile: 0, Level: 3, Index: 2}}},
	}}}
	if _, err := Validate(bad, testPix); err == nil {
		t.Fatal("unheld block accepted")
	}
	// A schedule that never composites anything.
	idle := &Schedule{Name: "idle", P: 2, Tiles: 1}
	if _, err := Validate(idle, testPix); err == nil {
		t.Fatal("incomplete composition accepted")
	}
	// Self transfer.
	self := &Schedule{Name: "self", P: 2, Tiles: 1, Steps: []Step{{
		Transfers: []Transfer{{From: 0, To: 0, Block: Block{}}},
	}}}
	if _, err := Validate(self, testPix); err == nil {
		t.Fatal("self transfer accepted")
	}
	// Double composition: both ranks send their copy to each other.
	// Rank 1's copy then reaches rank 0 twice via a relay.
	dup := &Schedule{Name: "dup", P: 3, Tiles: 1, Steps: []Step{
		{Transfers: []Transfer{
			{From: 1, To: 0, Block: Block{}},
			{From: 2, To: 0, Block: Block{}},
		}},
	}}
	if _, err := Validate(dup, testPix); err != nil {
		t.Fatalf("legal direct merge rejected: %v", err)
	}
	overlap := &Schedule{Name: "overlap", P: 2, Tiles: 2, Steps: []Step{
		{Transfers: []Transfer{
			{From: 1, To: 0, Block: Block{Tile: 0}},
			{From: 1, To: 0, Block: Block{Tile: 1}},
		}},
		{Transfers: []Transfer{
			// Rank 1 no longer holds tile 0: must be rejected.
			{From: 1, To: 0, Block: Block{Tile: 0}},
		}},
	}}
	if _, err := Validate(overlap, testPix); err == nil {
		t.Fatal("resent block accepted")
	}
}

func TestRTSingleProcessor(t *testing.T) {
	s, err := RT(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSteps() != 0 {
		t.Fatalf("RT(1,4) has %d steps, want 0", s.NumSteps())
	}
	if _, err := Validate(s, testPix); err != nil {
		t.Fatal(err)
	}
}

func TestRTRejectsBadArgs(t *testing.T) {
	if _, err := RT(0, 1); err == nil {
		t.Fatal("RT(0,1) accepted")
	}
	if _, err := RT(4, 0); err == nil {
		t.Fatal("RT(4,0) accepted")
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestTreeValidates(t *testing.T) {
	for p := 1; p <= 17; p++ {
		s, err := Tree(p)
		if err != nil {
			t.Fatalf("Tree(%d): %v", p, err)
		}
		c, err := Validate(s, testPix)
		if err != nil {
			t.Fatalf("Tree(%d): %v", p, err)
		}
		// Rank 0 holds everything.
		if len(c.Final) != 1 || c.Final[0].Rank != 0 {
			t.Fatalf("Tree(%d): final distribution %v", p, c.Final)
		}
		if got, want := s.NumSteps(), CeilLog2(p); got != want {
			t.Fatalf("Tree(%d): %d steps, want %d", p, got, want)
		}
	}
}

func TestTreeMovesFullImages(t *testing.T) {
	p := 8
	s, _ := Tree(p)
	c, err := Validate(s, testPix)
	if err != nil {
		t.Fatal(err)
	}
	// Step 1 moves P/2 full images; total messages P-1.
	if got := c.TotalMessages(); got != p-1 {
		t.Fatalf("Tree messages = %d, want %d", got, p-1)
	}
	want := int64((p - 1) * testPix * raster.BytesPerPixel)
	if got := c.TotalBytes(); got != want {
		t.Fatalf("Tree bytes = %d, want %d (full images every hop)", got, want)
	}
}

func TestRTWithOptsAllCombosValidate(t *testing.T) {
	for _, opts := range []RTOpts{
		{}, {NoRotate: true}, {NoBalance: true}, {NoRotate: true, NoBalance: true},
	} {
		for _, pn := range [][2]int{{3, 4}, {7, 3}, {16, 4}, {13, 5}} {
			s, err := RTWithOpts(pn[0], pn[1], opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Validate(s, testPix); err != nil {
				t.Fatalf("RTWithOpts(%v, %+v): %v", pn, opts, err)
			}
		}
	}
}

func TestRadixKValidates(t *testing.T) {
	cases := [][2]interface{}{
		{2, []int{2}},
		{4, []int{4}},
		{4, []int{2, 2}},
		{8, []int{2, 4}},
		{8, []int{4, 2}},
		{8, []int{8}},
		{16, []int{4, 4}},
		{32, []int{4, 4, 2}},
		{32, []int{2, 2, 2, 2, 2}}, // degenerates to binary-swap structure
		{64, []int{8, 8}},
	}
	for _, c := range cases {
		p, factors := c[0].(int), c[1].([]int)
		s, err := RadixK(p, factors)
		if err != nil {
			t.Fatalf("RadixK(%d,%v): %v", p, factors, err)
		}
		if got, want := s.NumSteps(), len(factors); got != want {
			t.Fatalf("RadixK(%d,%v): %d rounds, want %d", p, factors, got, want)
		}
		if _, err := Validate(s, testPix); err != nil {
			t.Fatalf("RadixK(%d,%v): %v", p, factors, err)
		}
	}
}

func TestRadixKAllTwosMatchesBinarySwapTraffic(t *testing.T) {
	p := 16
	bs, _ := BinarySwap(p)
	rk, err := RadixK(p, []int{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Validate(bs, testPix)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := Validate(rk, testPix)
	if err != nil {
		t.Fatal(err)
	}
	if cb.TotalMessages() != cr.TotalMessages() || cb.TotalBytes() != cr.TotalBytes() {
		t.Fatalf("radix-2 traffic (%d msgs, %d B) differs from binary-swap (%d msgs, %d B)",
			cr.TotalMessages(), cr.TotalBytes(), cb.TotalMessages(), cb.TotalBytes())
	}
}

func TestRadixKFewerStepsMoreMessages(t *testing.T) {
	// Radix 8x8 on 64 ranks: 2 rounds instead of 6 but 7 messages per rank
	// per round — the classic startup/volume trade.
	p := 64
	rk, err := RadixK(p, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Validate(rk, testPix)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.TotalMessages(), p*7*2; got != want {
		t.Fatalf("messages = %d, want %d", got, want)
	}
}

func TestRadixKRejectsBadFactors(t *testing.T) {
	if _, err := RadixK(6, []int{2, 3}); err == nil {
		t.Fatal("factor 3 accepted")
	}
	if _, err := RadixK(8, []int{2, 2}); err == nil {
		t.Fatal("wrong product accepted")
	}
	if _, err := RadixK(0, nil); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestDefaultFactors(t *testing.T) {
	cases := map[int][]int{2: {2}, 4: {4}, 8: {4, 2}, 16: {4, 4}, 32: {4, 4, 2}}
	for p, want := range cases {
		got, err := DefaultFactors(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("DefaultFactors(%d) = %v, want %v", p, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("DefaultFactors(%d) = %v, want %v", p, got, want)
			}
		}
	}
	if _, err := DefaultFactors(12); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
}

// Adversarial meta-test: mutate valid schedules in ways that break the
// composition invariant and assert the validator rejects every mutant.
// This is what makes "Validate passed" meaningful evidence.
func TestValidatorKillsMutants(t *testing.T) {
	build := func() *Schedule {
		s, err := RT(6, 3)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	clone := func(s *Schedule) *Schedule {
		out := &Schedule{Name: s.Name, P: s.P, Tiles: s.Tiles, Steps: make([]Step, len(s.Steps))}
		for i, st := range s.Steps {
			out.Steps[i] = Step{PreHalvings: st.PreHalvings, PostHalvings: st.PostHalvings,
				Transfers: append([]Transfer(nil), st.Transfers...)}
		}
		return out
	}
	if _, err := Validate(build(), testPix); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}

	mutants := map[string]func(*Schedule){
		"drop a transfer": func(s *Schedule) {
			st := &s.Steps[1]
			st.Transfers = st.Transfers[1:]
		},
		"duplicate a transfer": func(s *Schedule) {
			st := &s.Steps[0]
			st.Transfers = append(st.Transfers, st.Transfers[0])
		},
		"reroute a receiver": func(s *Schedule) {
			tr := &s.Steps[1].Transfers[0]
			tr.To = (tr.To + 1) % s.P
			if tr.To == tr.From {
				tr.To = (tr.To + 1) % s.P
			}
		},
		"wrong block level": func(s *Schedule) {
			s.Steps[1].Transfers[0].Block.Level++
		},
		"extra halving": func(s *Schedule) {
			s.Steps[0].PostHalvings++
		},
		"missing halving": func(s *Schedule) {
			s.Steps[0].PostHalvings = 0
		},
		"swapped sender": func(s *Schedule) {
			tr := &s.Steps[0].Transfers[0]
			tr.From, tr.To = tr.To, tr.From
		},
	}
	for name, mutate := range mutants {
		m := clone(build())
		mutate(m)
		if _, err := Validate(m, testPix); err == nil {
			t.Errorf("mutant %q passed validation", name)
		}
	}
}

func TestToDOT(t *testing.T) {
	s, err := RT(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	dot := s.ToDOT()
	if !strings.HasPrefix(dot, "digraph") || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Fatalf("malformed DOT:\n%s", dot)
	}
	transfers := 0
	for _, st := range s.Steps {
		transfers += len(st.Transfers)
	}
	if got := strings.Count(dot, "->"); got != transfers {
		t.Fatalf("DOT has %d edges, schedule has %d transfers", got, transfers)
	}
	for si := range s.Steps {
		if !strings.Contains(dot, fmt.Sprintf("cluster_step%d", si+1)) {
			t.Fatalf("step %d subgraph missing", si+1)
		}
	}
}
