package schedule

import "fmt"

// DirectSend builds the one-step baseline: the image is cut into P tiles,
// tile j is owned by rank j, and every rank ships its copy of every foreign
// tile straight to that tile's owner. P*(P-1) messages in a single step.
// Send order is rotated (rank r first sends to r+1, then r+2, ...) so no
// receiver is hit by all senders at once.
func DirectSend(p int) (*Schedule, error) {
	if p < 1 {
		return nil, fmt.Errorf("schedule: DirectSend needs p >= 1, got %d", p)
	}
	st := Step{}
	for off := 1; off < p; off++ {
		for r := 0; r < p; r++ {
			to := (r + off) % p
			st.Transfers = append(st.Transfers, Transfer{From: r, To: to, Block: Block{Tile: to}})
		}
	}
	sched := &Schedule{Name: "direct-send", P: p, Tiles: p}
	if p > 1 {
		sched.Steps = []Step{st}
	}
	return sched, nil
}

// BinarySwap builds the binary-swap schedule of Ma et al.: processors pair
// up, exchange half of their current region and composite, for log2(P)
// steps. P must be a power of two (the method's well-known restriction the
// paper sets out to lift).
func BinarySwap(p int) (*Schedule, error) {
	if !IsPowerOfTwo(p) {
		return nil, fmt.Errorf("schedule: BinarySwap needs a power-of-two processor count, got %d", p)
	}
	sched := &Schedule{Name: "binary-swap", P: p, Tiles: 1}
	// idx[r] is the index of the block rank r holds at the current level.
	idx := make([]int, p)
	steps := CeilLog2(p)
	for k := 1; k <= steps; k++ {
		st := Step{PreHalvings: 1}
		bit := 1 << uint(k-1)
		for r := 0; r < p; r++ {
			keep, send := idx[r]*2, idx[r]*2+1
			if r&bit != 0 {
				keep, send = send, keep
			}
			st.Transfers = append(st.Transfers, Transfer{
				From:  r,
				To:    r ^ bit,
				Block: Block{Tile: 0, Level: k, Index: send},
			})
			idx[r] = keep
		}
		sched.Steps = append(sched.Steps, st)
	}
	return sched, nil
}

// Tree builds the naive binary-tree composition, the third classic
// baseline: at step k, rank r with r mod 2^k == 2^(k-1) ships its whole
// accumulated image to rank r - 2^(k-1) and goes idle. After ceil(log2 P)
// steps rank 0 holds the final image. Full-image messages and half the
// processors idling each step are exactly the weaknesses binary-swap and
// rotate-tiling remove.
func Tree(p int) (*Schedule, error) {
	if p < 1 {
		return nil, fmt.Errorf("schedule: Tree needs p >= 1, got %d", p)
	}
	sched := &Schedule{Name: "binary-tree", P: p, Tiles: 1}
	for k := 1; k <= CeilLog2(p); k++ {
		st := Step{}
		half := 1 << uint(k-1)
		for r := half; r < p; r += 2 * half {
			st.Transfers = append(st.Transfers, Transfer{From: r, To: r - half, Block: Block{Tile: 0}})
		}
		sched.Steps = append(sched.Steps, st)
	}
	return sched, nil
}

// Pipeline builds Lee's parallel-pipelined schedule: the image is cut into
// P tiles and the processors form a ring; at step k rank r forwards its
// accumulated data for tile (r-k+1 mod P) to rank r+1 and receives the
// accumulation for tile (r-k mod P). After P-1 steps rank r owns the fully
// composited tile (r+1 mod P).
//
// With the non-commutative "over" operator the in-flight accumulation for a
// tile can temporarily consist of two depth segments (the rank interval
// wraps around the ring); messages then carry both fragments, and the
// compositor merges them when the gap closes. The traffic census reports
// the honest (fragment-weighted) byte counts.
func Pipeline(p int) (*Schedule, error) {
	if p < 1 {
		return nil, fmt.Errorf("schedule: Pipeline needs p >= 1, got %d", p)
	}
	sched := &Schedule{Name: "parallel-pipelined", P: p, Tiles: p}
	for k := 1; k <= p-1; k++ {
		st := Step{}
		for r := 0; r < p; r++ {
			tile := ((r-k+1)%p + p) % p
			st.Transfers = append(st.Transfers, Transfer{
				From:  r,
				To:    (r + 1) % p,
				Block: Block{Tile: tile},
			})
		}
		sched.Steps = append(sched.Steps, st)
	}
	return sched, nil
}
