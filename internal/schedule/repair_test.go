package schedule

import (
	"fmt"
	"testing"
)

func TestBuddyInvolutionEvenMesh(t *testing.T) {
	for p := 2; p <= 16; p += 2 {
		for r := 0; r < p; r++ {
			b := Buddy(r, p)
			if b == r || b < 0 || b >= p {
				t.Fatalf("p=%d: Buddy(%d)=%d out of range or self", p, r, b)
			}
			if Buddy(b, p) != r {
				t.Fatalf("p=%d: Buddy not an involution: %d -> %d -> %d", p, r, b, Buddy(b, p))
			}
		}
	}
}

func TestBuddyOddMeshFallback(t *testing.T) {
	for p := 3; p <= 15; p += 2 {
		for r := 0; r < p; r++ {
			b := Buddy(r, p)
			if b == r || b < 0 || b >= p {
				t.Fatalf("p=%d: Buddy(%d)=%d out of range or self", p, r, b)
			}
		}
		// Only the last rank lacks an XOR partner.
		if got, want := Buddy(p-1, p), (p-1+p/2)%p; got != want {
			t.Fatalf("p=%d: Buddy(%d)=%d, want fallback %d", p, p-1, got, want)
		}
	}
}

func TestWardsCoverEveryRank(t *testing.T) {
	for p := 2; p <= 16; p++ {
		seen := make([]bool, p)
		for r := 0; r < p; r++ {
			for _, w := range Wards(r, p) {
				if seen[w] {
					t.Fatalf("p=%d: rank %d warded twice", p, w)
				}
				seen[w] = true
				if Buddy(w, p) != r {
					t.Fatalf("p=%d: Wards(%d) contains %d but Buddy(%d)=%d", p, r, w, w, Buddy(w, p))
				}
			}
		}
		for w, ok := range seen {
			if !ok {
				t.Fatalf("p=%d: rank %d has no replica holder", p, w)
			}
		}
	}
}

func TestRepairOwners(t *testing.T) {
	owners, ok := RepairOwners(4, []int{3})
	if !ok {
		t.Fatal("single death with live buddy must be recoverable")
	}
	if want := []int{0, 1, 2, 2}; !equalInts(owners, want) {
		t.Fatalf("owners = %v, want %v", owners, want)
	}
	// A dead buddy pair loses both copies of both layers.
	owners, ok = RepairOwners(4, []int{2, 3})
	if ok {
		t.Fatal("buddy-pair death must be unrecoverable")
	}
	if want := []int{0, 1, -1, -1}; !equalInts(owners, want) {
		t.Fatalf("owners = %v, want %v", owners, want)
	}
}

// TestRepairValidatesAcrossMethodsAndDeaths is the planner's core contract:
// for every method, mesh size and single/double death pattern where the
// replicas survive, the repaired schedule passes symbolic validation with
// the buddy-staged owners (Repair validates internally; this exercises it).
func TestRepairValidatesAcrossMethodsAndDeaths(t *testing.T) {
	type mk struct {
		name  string
		build func(p int) (*Schedule, error)
	}
	methods := []mk{
		{"nrt", func(p int) (*Schedule, error) { return NRT(p, 4) }},
		{"2nrt", func(p int) (*Schedule, error) { return TwoNRT(p, 4) }},
		{"bs", BinarySwap},
		{"pp", Pipeline},
	}
	for _, m := range methods {
		for _, p := range []int{2, 4, 5, 7, 8} {
			s, err := m.build(p)
			if err != nil {
				// binary-swap needs a power of two; skip incompatible sizes.
				continue
			}
			for d := 0; d < p; d++ {
				t.Run(fmt.Sprintf("%s/p%d/dead%d", m.name, p, d), func(t *testing.T) {
					rs, owners, err := Repair(s, []int{d})
					if err != nil {
						t.Fatalf("Repair: %v", err)
					}
					if owners[d] != Buddy(d, p) {
						t.Fatalf("dead layer %d owned by %d, want buddy %d", d, owners[d], Buddy(d, p))
					}
					for _, tr := range allTransfers(rs) {
						if tr.From == d || tr.To == d {
							t.Fatalf("repaired plan still routes through dead rank %d: %v", d, tr)
						}
					}
				})
			}
		}
	}
}

// TestRepairTwoDisjointDeaths kills two ranks from different buddy pairs —
// both layers stay recoverable from their surviving buddies.
func TestRepairTwoDisjointDeaths(t *testing.T) {
	s, err := NRT(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	rs, owners, err := Repair(s, []int{1, 6})
	if err != nil {
		t.Fatal(err)
	}
	if owners[1] != 0 || owners[6] != 7 {
		t.Fatalf("owners = %v, want layer1->0 and layer6->7", owners)
	}
	for _, tr := range allTransfers(rs) {
		if tr.From == 1 || tr.To == 1 || tr.From == 6 || tr.To == 6 {
			t.Fatalf("repaired plan routes through a dead rank: %v", tr)
		}
	}
}

// TestRepairUnrecoverablePairStillPlans asserts the fallback shape: when a
// buddy pair dies, Repair still returns a valid partial plan with those
// layers absent, for the compose-partial fallback epoch.
func TestRepairUnrecoverablePairStillPlans(t *testing.T) {
	s, err := TwoNRT(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	rs, owners, err := Repair(s, []int{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if owners[4] != -1 || owners[5] != -1 {
		t.Fatalf("owners = %v, want layers 4 and 5 absent", owners)
	}
	for _, tr := range allTransfers(rs) {
		if tr.From == 4 || tr.To == 4 || tr.From == 5 || tr.To == 5 {
			t.Fatalf("partial plan routes through a dead rank: %v", tr)
		}
	}
}

// TestRepairNoDoubleSendPerStep: the executor's Take removes a block on
// send, so no rank may send the same tile twice within one step.
func TestRepairNoDoubleSendPerStep(t *testing.T) {
	for _, p := range []int{4, 5, 7, 8, 9, 16} {
		s, err := Pipeline(p)
		if err != nil {
			t.Fatal(err)
		}
		for d := 0; d < p; d++ {
			rs, _, err := Repair(s, []int{d})
			if err != nil {
				t.Fatalf("p=%d dead=%d: %v", p, d, err)
			}
			for si, step := range rs.Steps {
				sent := map[string]bool{}
				for _, tr := range step.Transfers {
					k := fmt.Sprintf("%d/%v", tr.From, tr.Block)
					if sent[k] {
						t.Fatalf("p=%d dead=%d step %d: rank %d sends %v twice", p, d, si+1, tr.From, tr.Block)
					}
					sent[k] = true
				}
			}
		}
	}
}

func allTransfers(s *Schedule) []Transfer {
	var out []Transfer
	for _, st := range s.Steps {
		out = append(out, st.Transfers...)
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRestoreRevertsToOriginal: after the mesh heals (empty dead set) the
// restored plan must be the original schedule pointer with a nil owner map,
// and with deaths remaining it must match Repair exactly.
func TestRestoreRevertsToOriginal(t *testing.T) {
	s, err := NRT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, owners, err := Restore(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan != s || owners != nil {
		t.Fatalf("Restore with no dead ranks did not revert: plan=%p owners=%v", plan, owners)
	}
	restored, rOwners, err := Restore(s, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	repaired, pOwners, err := Repair(s, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(rOwners, pOwners) || len(allTransfers(restored)) != len(allTransfers(repaired)) {
		t.Fatalf("Restore with dead ranks diverged from Repair: %v vs %v", rOwners, pOwners)
	}
}
