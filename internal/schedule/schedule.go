// Package schedule represents image-composition communication schedules as
// data: who sends which block to whom at every step. Executing a schedule is
// the job of internal/compositor (real communicators) and internal/simnet
// (virtual-time cost simulation); this package only constructs and validates
// schedules.
//
// A schedule describes the composition of P depth-ordered partial images
// (rank 0 front-most) into one final image. The image is first cut into
// Tiles contiguous spans ("initial blocks" in the paper); blocks may then be
// halved between steps, so a block is addressed as (tile, level, index):
// tile's span bisected level times, taking the index-th piece.
package schedule

import (
	"fmt"
	"strings"

	"rtcomp/internal/raster"
)

// Block addresses one piece of the image: the Index-th part (of 2^Level) of
// tile Tile's span.
type Block struct {
	Tile  int
	Level int
	Index int
}

// String implements fmt.Stringer.
func (b Block) String() string { return fmt.Sprintf("t%d.L%d.%d", b.Tile, b.Level, b.Index) }

// Halves returns the two children of the block one level down.
func (b Block) Halves() (Block, Block) {
	return Block{b.Tile, b.Level + 1, 2 * b.Index},
		Block{b.Tile, b.Level + 1, 2*b.Index + 1}
}

// Span resolves the block to a pixel span, given the tile spans of the
// image (as produced by raster.SplitSpan on the full span).
func (b Block) Span(tiles []raster.Span) raster.Span {
	s := tiles[b.Tile]
	for l := b.Level - 1; l >= 0; l-- {
		a, c := s.Halves()
		if b.Index>>uint(l)&1 == 0 {
			s = a
		} else {
			s = c
		}
	}
	return s
}

// Transfer is one message: From ships everything it currently holds for
// Block to To and forgets the block.
type Transfer struct {
	From, To int
	Block    Block
}

// Step is one communication step of a schedule. PreHalvings counts how
// often every held block is halved before the step's transfers
// (binary-swap splits once and sends one half; radix-k with factor 2^j
// splits j times); PostHalvings halves after the transfers (rotate-tiling
// style).
type Step struct {
	PreHalvings  int
	PostHalvings int
	Transfers    []Transfer
}

// Schedule is a full composition plan for P ranks.
type Schedule struct {
	Name  string
	P     int
	Tiles int // initial blocks per sub-image (the paper's N)
	Steps []Step
}

// NumSteps reports the number of communication steps.
func (s *Schedule) NumSteps() int { return len(s.Steps) }

// TileSpans returns the initial tile spans for an image with npix pixels.
func (s *Schedule) TileSpans(npix int) []raster.Span {
	return raster.SplitSpan(raster.Span{Lo: 0, Hi: npix}, s.Tiles)
}

// ToDOT renders the schedule's communication pattern as a Graphviz
// digraph: one subgraph per step, nodes P<r>@<step>, one edge per
// transfer labelled with its block. Feed the output to `dot -Tsvg` to
// visualise a method's traffic.
func (s *Schedule) ToDOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n", s.Name)
	for si, step := range s.Steps {
		fmt.Fprintf(&b, "  subgraph cluster_step%d {\n    label=\"step %d\";\n", si+1, si+1)
		seen := map[int]bool{}
		for _, tr := range step.Transfers {
			seen[tr.From] = true
			seen[tr.To] = true
		}
		for r := 0; r < s.P; r++ {
			if seen[r] {
				fmt.Fprintf(&b, "    \"P%d@%d\" [label=\"P%d\"];\n", r, si+1, r)
			}
		}
		for _, tr := range step.Transfers {
			fmt.Fprintf(&b, "    \"P%d@%d\" -> \"P%d@%d\" [label=%q, fontsize=8];\n",
				tr.From, si+1, tr.To, si+1, tr.Block.String())
		}
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// CeilLog2 returns ceil(log2(p)) with CeilLog2(1) == 0.
func CeilLog2(p int) int {
	if p < 1 {
		panic("schedule: CeilLog2 of non-positive value")
	}
	s := 0
	for v := 1; v < p; v <<= 1 {
		s++
	}
	return s
}

// IsPowerOfTwo reports whether p is a positive power of two.
func IsPowerOfTwo(p int) bool { return p > 0 && p&(p-1) == 0 }

// RankRange is a half-open interval [Lo, Hi) of rank numbers whose layers
// have been composited together, in depth order.
type RankRange struct {
	Lo, Hi int
}

// Len reports the number of ranks covered.
func (r RankRange) Len() int { return r.Hi - r.Lo }

// String implements fmt.Stringer.
func (r RankRange) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }
