package schedule

import (
	"fmt"
	"sort"
)

// This file plans composition schedules over a degraded mesh: given the set
// of dead ranks, Repair produces a schedule that composites every layer that
// is still reachable — each dead rank's layer contributed by the buddy that
// holds its replicated sub-image — using only surviving ranks.
//
// The repaired plan is a per-tile binary merge tree over the full depth
// range [0, P). Split points are aligned to even layer indices so an
// XOR-buddy pair {2k, 2k+1} never straddles a split: the pair's surviving
// member holds both layers pre-composited, and the tree above only ever
// merges depth-contiguous holdings. Every transfer ships the whole tile
// (Block{Tile: t}) — the executor's Take ships all fragments of a block, so
// a sender's entire holding for the tile moves at once.

// Buddy returns the deterministic replica holder of rank r in a p-rank
// mesh: rank XOR 1, falling back to (r + p/2) mod p when the XOR partner
// does not exist (the last rank of an odd mesh). Buddy(r, 1) is r itself —
// a single-rank mesh has nobody to replicate to.
func Buddy(r, p int) int {
	if p <= 1 {
		return r
	}
	if b := r ^ 1; b < p {
		return b
	}
	return (r + p/2) % p
}

// Wards returns the ranks whose replicas rank r holds (the inverse image of
// Buddy), in ascending order. In an even mesh every rank has exactly one
// ward; in an odd mesh the fallback target of the last rank holds two.
func Wards(r, p int) []int {
	var out []int
	for w := 0; w < p; w++ {
		if w != r && Buddy(w, p) == r {
			out = append(out, w)
		}
	}
	return out
}

// RepairOwners maps each layer to the surviving rank that can contribute
// it: the rank itself if alive, else its buddy if the buddy is alive and
// holds the replica, else -1 (the layer is unrecoverable — both copies are
// gone). recoverable reports whether every layer has a surviving owner.
func RepairOwners(p int, dead []int) (owners []int, recoverable bool) {
	isDead := make([]bool, p)
	for _, d := range dead {
		if d >= 0 && d < p {
			isDead[d] = true
		}
	}
	owners = make([]int, p)
	recoverable = true
	for l := 0; l < p; l++ {
		switch {
		case !isDead[l]:
			owners[l] = l
		case !isDead[Buddy(l, p)]:
			owners[l] = Buddy(l, p)
		default:
			owners[l] = -1
			recoverable = false
		}
	}
	return owners, recoverable
}

// Restore re-plans after the mesh healed: with no ranks still dead the
// original schedule comes back verbatim with a nil owner map (every layer
// staged at its own rank) — the merge tree reverts to its pre-failure shape,
// which is what makes a post-rejoin frame byte-identical to the fault-free
// run. Any ranks still dead go through Repair as usual.
func Restore(s *Schedule, stillDead []int) (*Schedule, []int, error) {
	if len(stillDead) == 0 {
		return s, nil, nil
	}
	return Repair(s, stillDead)
}

// Repair re-plans the composition over the survivors of s.P ranks after the
// given ranks died. The returned owners slice (length P) maps each layer to
// the rank staging it (-1 = unrecoverable, left absent; the caller decides
// whether that is acceptable). The plan is validated symbolically before it
// is returned, so a schedule that would not composite cleanly never reaches
// the executor.
func Repair(s *Schedule, dead []int) (*Schedule, []int, error) {
	p := s.P
	for _, d := range dead {
		if d < 0 || d >= p {
			return nil, nil, fmt.Errorf("schedule: repair: dead rank %d out of range [0,%d)", d, p)
		}
	}
	owners, _ := RepairOwners(p, dead)
	isDead := make([]bool, p)
	for _, d := range dead {
		isDead[d] = true
	}
	nlive := 0
	for r := 0; r < p; r++ {
		if !isDead[r] {
			nlive++
		}
	}
	if nlive == 0 {
		return nil, nil, fmt.Errorf("schedule: repair: no surviving ranks")
	}
	// More tiles than the original schedule spreads the final blocks across
	// survivors (binary-swap starts from one tile, which would funnel the
	// whole image through a single keeper).
	tiles := s.Tiles
	if tiles < nlive {
		tiles = nlive
	}

	height := CeilLog2(p)
	steps := make([]Step, height)
	kept := make([]int, p) // contested merges won, for load balancing
	for t := 0; t < tiles; t++ {
		if err := repairTile(t, p, owners, steps, kept); err != nil {
			return nil, nil, err
		}
	}
	out := &Schedule{Name: s.Name + "+repair", P: p, Tiles: tiles}
	for _, st := range steps {
		if len(st.Transfers) > 0 {
			out.Steps = append(out.Steps, st)
		}
	}
	if _, err := ValidateFrom(out, 4*tiles, owners); err != nil {
		return nil, nil, fmt.Errorf("schedule: repaired plan failed validation: %w", err)
	}
	return out, owners, nil
}

// ownedRun is a depth-contiguous interval of layers held (pre-composited)
// by one rank during the repair planning simulation.
type ownedRun struct {
	lo, hi, owner int
}

// repairTile plans one tile's merge tree, appending transfers to steps.
func repairTile(t, p int, owners []int, steps []Step, kept []int) error {
	var cover []ownedRun
	for l := 0; l < p; l++ {
		if owners[l] >= 0 {
			cover = append(cover, ownedRun{l, l + 1, owners[l]})
		}
	}
	cover = coalesceRuns(cover)
	block := Block{Tile: t}

	var walk func(lo, hi, h int) error
	walk = func(lo, hi, h int) error {
		if hi-lo <= 1 {
			return nil
		}
		mid := lo + repairSplit(hi-lo, h)
		if err := walk(lo, mid, h-1); err != nil {
			return err
		}
		if err := walk(mid, hi, h-1); err != nil {
			return err
		}
		// Merge the node: every holder with runs inside [lo,hi) ships its
		// whole tile holding to one keeper.
		holders := map[int]bool{}
		for _, c := range cover {
			if c.lo < hi && c.hi > lo {
				holders[c.owner] = true
			}
		}
		if len(holders) <= 1 {
			return nil
		}
		// A holder whose tile holdings extend outside the node must keep:
		// its send would drag unrelated depth ranges along (Take ships the
		// whole block). At most one such holder can exist — only the
		// odd-mesh fallback ward holds non-pair-local layers.
		keeper, external := -1, -1
		for r := range holders {
			for _, c := range cover {
				if c.owner == r && (c.lo < lo || c.hi > hi) {
					if external >= 0 && external != r {
						return fmt.Errorf("schedule: repair: two holders (%d, %d) span node [%d,%d)", external, r, lo, hi)
					}
					external = r
				}
			}
		}
		if external >= 0 {
			keeper = external
		} else {
			for r := range holders {
				if keeper < 0 || kept[r] < kept[keeper] || (kept[r] == kept[keeper] && r < keeper) {
					keeper = r
				}
			}
		}
		kept[keeper]++
		for r := range holders {
			if r == keeper {
				continue
			}
			steps[h-1].Transfers = append(steps[h-1].Transfers, Transfer{From: r, To: keeper, Block: block})
			for i := range cover {
				if cover[i].owner == r {
					cover[i].owner = keeper
				}
			}
		}
		cover = coalesceRuns(cover)
		return nil
	}
	return walk(0, p, CeilLog2(p))
}

// repairSplit returns the left-child size for a node of s layers with a
// height budget of h halvings: half the node rounded up to an even count
// (so XOR pairs never straddle), capped at 2^(h-1) so the subtree fits its
// budget. A node of exactly two layers splits into its two single layers.
func repairSplit(s, h int) int {
	if s == 2 {
		return 1
	}
	half := (s + 1) / 2
	if half%2 == 1 {
		half++
	}
	if cap := 1 << (h - 1); half > cap {
		half = cap
	}
	return half
}

// coalesceRuns sorts runs by depth and fuses adjacent runs with the same
// owner — the planning mirror of the executor's fragment coalescing.
func coalesceRuns(runs []ownedRun) []ownedRun {
	if len(runs) == 0 {
		return runs
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].lo < runs[j].lo })
	out := runs[:1]
	for _, r := range runs[1:] {
		last := &out[len(out)-1]
		if r.lo == last.hi && r.owner == last.owner {
			last.hi = r.hi
		} else {
			out = append(out, r)
		}
	}
	return out
}
