package schedule

import "fmt"

// Rotate-tiling schedule generation.
//
// The paper specifies RT operationally: each sub-image starts as N equal
// blocks; there are ceil(log2 P) communication steps; in each step every
// processor sends and receives whole blocks chosen by rotation formulas and
// composites what it received; every surviving block is then halved, except
// after the last step. The printed send/receive index equations are OCR-
// corrupted in the available text (see DESIGN.md), so this implementation
// regenerates an equivalent schedule from first principles:
//
//   - Ranks are depth-ordered, and "over" is associative but not
//     commutative, so any correct schedule must only ever merge adjacent
//     rank ranges. We therefore build, per tile, a binary merge tree over
//     the ordered rank interval [0,P); the merge at tree height k happens at
//     communication step k, giving exactly ceil(log2 P) steps for any P.
//   - The split points of the per-tile trees alternate ("rotate") with the
//     tile index and depth, and block keepers are chosen by a load-balanced
//     rotation, so the extra work of uneven merges (P not a power of two)
//     is spread over different processors for different tiles and every
//     processor still holds part of the final image — the property the
//     paper's Figure 1 example exhibits for P = 3.
//   - At step k the blocks in flight are at halving level k-1, so each
//     message carries exactly A/(N*2^(k-1)) pixels — the block size the
//     paper's Table 1 assigns to both RT variants.
//
// The Validate function in this package proves, for every generated
// schedule, that each final block is composited from all P ranks exactly
// once and in depth order.

// RTOpts disables individual design ingredients of the RT generator, for
// the ablation experiments: NoRotate pins every tile to the same merge
// tree and keeper parity; NoBalance picks block keepers by parity alone
// instead of tracking per-rank load.
type RTOpts struct {
	NoRotate  bool
	NoBalance bool
}

// RT builds a rotate-tiling schedule for p processors with n initial blocks
// per sub-image. The paper requires p*n to be even and splits the domain
// across the NRT and TwoNRT constructors; RT itself accepts any p >= 1 and
// n >= 1 (the generative construction has no parity restriction) and is
// exposed for experimentation.
func RT(p, n int) (*Schedule, error) { return RTWithOpts(p, n, RTOpts{}) }

// RTWithOpts is RT with ablation switches.
func RTWithOpts(p, n int, opts RTOpts) (*Schedule, error) {
	if p < 1 || n < 1 {
		return nil, fmt.Errorf("schedule: RT needs p >= 1 and n >= 1, got p=%d n=%d", p, n)
	}
	sched := &Schedule{Name: fmt.Sprintf("rotate-tiling(N=%d)", n), P: p, Tiles: n}
	if p == 1 {
		return sched, nil
	}
	steps := CeilLog2(p)

	// Per-tile merge trees: nodesAt[h] lists the rank intervals alive at
	// height h; an interval of size 1 passes through merges untouched.
	type ival struct{ lo, hi int }
	children := make([]map[ival][2]ival, n) // per tile: parent -> (left, right)
	for t := 0; t < n; t++ {
		children[t] = map[ival][2]ival{}
		var build func(nd ival, h int)
		build = func(nd ival, h int) {
			s := nd.hi - nd.lo
			if h == 0 || s == 1 {
				return
			}
			cap := 1 << uint(h-1)
			rot := (t + h + nd.lo) & 1
			if opts.NoRotate {
				rot = 0
			}
			sl := (s + rot) / 2
			if sl > cap {
				sl = cap
			}
			if s-sl > cap {
				sl = s - cap
			}
			l, r := ival{nd.lo, nd.lo + sl}, ival{nd.lo + sl, nd.hi}
			children[t][nd] = [2]ival{l, r}
			build(l, h-1)
			build(r, h-1)
		}
		build(ival{0, p}, steps)
	}

	// nodes at height h for tile t, derived from the tree top-down.
	nodesAt := func(t, h int) []ival {
		nodes := []ival{{0, p}}
		for cur := steps; cur > h; cur-- {
			var next []ival
			for _, nd := range nodes {
				if ch, ok := children[t][nd]; ok && nd.hi-nd.lo > 1 {
					// Only a real split counts; a size-1 node passes through.
					next = append(next, ch[0], ch[1])
				} else {
					next = append(next, nd)
				}
			}
			nodes = next
		}
		return nodes
	}

	// own[t] maps the current-level block index to its owner, per interval.
	own := make([]map[ival]map[int]int, n)
	for t := 0; t < n; t++ {
		own[t] = map[ival]map[int]int{}
		for r := 0; r < p; r++ {
			own[t][ival{r, r + 1}] = map[int]int{0: r}
		}
	}
	load := make([]int, p) // blocks currently owned, across tiles
	for r := range load {
		load[r] = n
	}

	for k := 1; k <= steps; k++ {
		st := Step{}
		if k < steps {
			st.PostHalvings = 1
		}
		blocks := 1 << uint(k-1)
		for t := 0; t < n; t++ {
			for _, nd := range nodesAt(t, k) {
				ch, ok := children[t][nd]
				if !ok || nd.hi-nd.lo == 1 {
					// Pass-through: remap the child's ownership (same
					// interval) — nothing to do, the map key is unchanged.
					continue
				}
				mL, okL := own[t][ch[0]]
				mR, okR := own[t][ch[1]]
				if !okL || !okR {
					panic("schedule: RT internal error: missing child ownership")
				}
				merged := make(map[int]int, blocks)
				for b := 0; b < blocks; b++ {
					oL, oR := mL[b], mR[b]
					keeper, loser := oL, oR
					parityFlip := !opts.NoRotate && (b+t+k)&1 == 1
					switch {
					case !opts.NoBalance && load[oL] > load[oR]:
						keeper, loser = oR, oL
					case !opts.NoBalance && load[oL] < load[oR]:
						// keep oL
					case parityFlip:
						keeper, loser = oR, oL
					}
					st.Transfers = append(st.Transfers, Transfer{
						From:  loser,
						To:    keeper,
						Block: Block{Tile: t, Level: k - 1, Index: b},
					})
					load[loser]--
					merged[b] = keeper
				}
				delete(own[t], ch[0])
				delete(own[t], ch[1])
				own[t][nd] = merged
			}
		}
		if st.PostHalvings > 0 {
			// Re-key ownership to the next level; loads double uniformly.
			for t := 0; t < n; t++ {
				for nd, m := range own[t] {
					next := make(map[int]int, 2*len(m))
					for b, r := range m {
						next[2*b] = r
						next[2*b+1] = r
					}
					own[t][nd] = next
				}
			}
			for r := range load {
				load[r] *= 2
			}
		}
		sched.Steps = append(sched.Steps, st)
	}
	return sched, nil
}

// NRT builds the paper's N_RT variant: an even number of processors with an
// arbitrary number of initial blocks.
func NRT(p, n int) (*Schedule, error) {
	if p%2 != 0 {
		return nil, fmt.Errorf("schedule: N_RT needs an even number of processors, got %d", p)
	}
	s, err := RT(p, n)
	if err != nil {
		return nil, err
	}
	s.Name = fmt.Sprintf("N_RT(N=%d)", n)
	return s, nil
}

// TwoNRT builds the paper's 2N_RT variant: an arbitrary number of
// processors with an even number of initial blocks.
func TwoNRT(p, n int) (*Schedule, error) {
	if n%2 != 0 {
		return nil, fmt.Errorf("schedule: 2N_RT needs an even number of initial blocks, got %d", n)
	}
	s, err := RT(p, n)
	if err != nil {
		return nil, err
	}
	s.Name = fmt.Sprintf("2N_RT(N=%d)", n)
	return s, nil
}
