package schedule

import (
	"fmt"
	"sort"

	"rtcomp/internal/raster"
)

// Holding is a fully composited final block and the rank that owns it after
// the schedule has run.
type Holding struct {
	Rank  int
	Block Block
}

// RankStep is the traffic one rank generates in one step.
type RankStep struct {
	MsgsSent   int
	BytesSent  int64 // fragment-weighted payload bytes, uncompressed
	BytesRecv  int64
	OverPixels int64 // pixels passed through the over operator on receipt
}

// Census is the symbolic traffic accounting of a schedule for a given image
// size: what the network and the over kernels would carry with the raw
// codec. Indexed PerRank[step][rank].
type Census struct {
	P       int
	NPixels int
	PerRank [][]RankStep
	Final   []Holding
}

// TotalMessages sums messages over all steps and ranks.
func (c *Census) TotalMessages() int {
	n := 0
	for _, step := range c.PerRank {
		for _, rs := range step {
			n += rs.MsgsSent
		}
	}
	return n
}

// TotalBytes sums payload bytes over all steps and ranks.
func (c *Census) TotalBytes() int64 {
	var n int64
	for _, step := range c.PerRank {
		for _, rs := range step {
			n += rs.BytesSent
		}
	}
	return n
}

// TotalOverPixels sums over-composited pixels over all steps and ranks.
func (c *Census) TotalOverPixels() int64 {
	var n int64
	for _, step := range c.PerRank {
		for _, rs := range step {
			n += rs.OverPixels
		}
	}
	return n
}

// MaxRankStep returns, for each step, the largest per-rank values — the
// critical-path view of a step under perfect overlap.
func (c *Census) MaxRankStep() []RankStep {
	out := make([]RankStep, len(c.PerRank))
	for s, step := range c.PerRank {
		for _, rs := range step {
			if rs.MsgsSent > out[s].MsgsSent {
				out[s].MsgsSent = rs.MsgsSent
			}
			if rs.BytesSent > out[s].BytesSent {
				out[s].BytesSent = rs.BytesSent
			}
			if rs.BytesRecv > out[s].BytesRecv {
				out[s].BytesRecv = rs.BytesRecv
			}
			if rs.OverPixels > out[s].OverPixels {
				out[s].OverPixels = rs.OverPixels
			}
		}
	}
	return out
}

// Validate symbolically executes the schedule for an image of npix pixels
// and proves the composition invariant: after the last step the final
// blocks partition the image, each held by exactly one rank, and each
// composited from every rank's layer exactly once in depth order. It
// returns the traffic census and final block owners.
func Validate(s *Schedule, npix int) (*Census, error) {
	return ValidateFrom(s, npix, nil)
}

// ValidateFrom is Validate for a schedule whose initial layers are staged
// at arbitrary ranks: owners[l] is the rank holding layer l's sub-image
// (several layers may share an owner — a buddy staging a dead rank's
// replica next to its own), and owners[l] < 0 marks a layer that is absent
// entirely (unrecoverable under the repair planner's fallback). A nil
// owners slice means the identity staging of a fresh composition. The
// final invariant adapts: every block must end as the maximal
// depth-contiguous runs of the layers that are present, held by exactly
// one rank, with the blocks partitioning the image.
func ValidateFrom(s *Schedule, npix int, owners []int) (*Census, error) {
	if s.P < 1 {
		return nil, fmt.Errorf("schedule %q: invalid P=%d", s.Name, s.P)
	}
	if npix < s.Tiles {
		return nil, fmt.Errorf("schedule %q: image of %d pixels cannot be cut into %d tiles", s.Name, npix, s.Tiles)
	}
	if owners != nil && len(owners) != s.P {
		return nil, fmt.Errorf("schedule %q: %d layer owners for P=%d", s.Name, len(owners), s.P)
	}
	tiles := s.TileSpans(npix)

	// held[r][block] = fragment list, kept sorted by Lo and maximally merged.
	held := make([]map[Block][]RankRange, s.P)
	for r := 0; r < s.P; r++ {
		held[r] = map[Block][]RankRange{}
	}
	for l := 0; l < s.P; l++ {
		owner := l
		if owners != nil {
			owner = owners[l]
		}
		if owner < 0 {
			continue
		}
		if owner >= s.P {
			return nil, fmt.Errorf("schedule %q: layer %d owned by out-of-range rank %d", s.Name, l, owner)
		}
		for t := 0; t < s.Tiles; t++ {
			b := Block{Tile: t}
			merged, _, err := mergeFrags(held[owner][b], []RankRange{{l, l + 1}})
			if err != nil {
				return nil, fmt.Errorf("schedule %q: staging layer %d at rank %d: %w", s.Name, l, owner, err)
			}
			held[owner][b] = merged
		}
	}

	halveAll := func() {
		for r := 0; r < s.P; r++ {
			next := make(map[Block][]RankRange, 2*len(held[r]))
			for b, frags := range held[r] {
				c0, c1 := b.Halves()
				next[c0] = cloneFrags(frags)
				next[c1] = cloneFrags(frags)
			}
			held[r] = next
		}
	}

	census := &Census{P: s.P, NPixels: npix, PerRank: make([][]RankStep, len(s.Steps))}
	for si, step := range s.Steps {
		census.PerRank[si] = make([]RankStep, s.P)
		for h := 0; h < step.PreHalvings; h++ {
			halveAll()
		}
		for _, tr := range step.Transfers {
			if tr.From < 0 || tr.From >= s.P || tr.To < 0 || tr.To >= s.P {
				return nil, fmt.Errorf("schedule %q step %d: transfer %v out of range", s.Name, si+1, tr)
			}
			if tr.From == tr.To {
				return nil, fmt.Errorf("schedule %q step %d: self-transfer %v", s.Name, si+1, tr)
			}
			frags, ok := held[tr.From][tr.Block]
			if !ok || len(frags) == 0 {
				return nil, fmt.Errorf("schedule %q step %d: rank %d sends block %v it does not hold",
					s.Name, si+1, tr.From, tr.Block)
			}
			span := tr.Block.Span(tiles)
			bytes := int64(len(frags)) * int64(span.Len()) * raster.BytesPerPixel
			census.PerRank[si][tr.From].MsgsSent++
			census.PerRank[si][tr.From].BytesSent += bytes
			census.PerRank[si][tr.To].BytesRecv += bytes
			delete(held[tr.From], tr.Block)

			merged, overs, err := mergeFrags(held[tr.To][tr.Block], frags)
			if err != nil {
				return nil, fmt.Errorf("schedule %q step %d: rank %d receiving %v: %w",
					s.Name, si+1, tr.To, tr.Block, err)
			}
			held[tr.To][tr.Block] = merged
			census.PerRank[si][tr.To].OverPixels += int64(overs) * int64(span.Len())
		}
		for h := 0; h < step.PostHalvings; h++ {
			halveAll()
		}
	}

	// Final invariant: every held block composited over exactly the maximal
	// depth-contiguous runs of present layers (the full [0,P) when no layer
	// is absent), spans partition the image, one holder per block.
	want := presentRuns(s.P, owners)
	if len(want) == 0 {
		return nil, fmt.Errorf("schedule %q: no layers present", s.Name)
	}
	var final []Holding
	for r := 0; r < s.P; r++ {
		for b, frags := range held[r] {
			if len(frags) == 0 {
				continue
			}
			if !equalRuns(frags, want) {
				return nil, fmt.Errorf("schedule %q: rank %d ends with block %v composited over %v, want %v",
					s.Name, r, b, frags, want)
			}
			final = append(final, Holding{Rank: r, Block: b})
		}
	}
	sort.Slice(final, func(i, j int) bool {
		si, sj := final[i].Block.Span(tiles), final[j].Block.Span(tiles)
		return si.Lo < sj.Lo
	})
	at := 0
	for _, h := range final {
		sp := h.Block.Span(tiles)
		if sp.Lo != at {
			return nil, fmt.Errorf("schedule %q: final blocks leave gap or overlap at pixel %d (block %v spans %v)",
				s.Name, at, h.Block, sp)
		}
		at = sp.Hi
	}
	if at != npix {
		return nil, fmt.Errorf("schedule %q: final blocks cover %d of %d pixels", s.Name, at, npix)
	}
	census.Final = final
	return census, nil
}

// presentRuns returns the maximal depth-contiguous runs of layers that are
// present under the given owner map (all of [0, p) when owners is nil).
func presentRuns(p int, owners []int) []RankRange {
	if owners == nil {
		return []RankRange{{0, p}}
	}
	var runs []RankRange
	for l := 0; l < p; l++ {
		if owners[l] < 0 {
			continue
		}
		if n := len(runs); n > 0 && runs[n-1].Hi == l {
			runs[n-1].Hi = l + 1
		} else {
			runs = append(runs, RankRange{l, l + 1})
		}
	}
	return runs
}

func equalRuns(a, b []RankRange) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func cloneFrags(f []RankRange) []RankRange {
	out := make([]RankRange, len(f))
	copy(out, f)
	return out
}

// mergeFrags merges incoming fragments into a fragment list, coalescing
// adjacent depth ranges. It returns the new list and the number of over
// operations (coalescings) performed, or an error if any two fragments
// overlap — which would composite some layer twice.
func mergeFrags(local, incoming []RankRange) ([]RankRange, int, error) {
	all := make([]RankRange, 0, len(local)+len(incoming))
	all = append(all, local...)
	all = append(all, incoming...)
	sort.Slice(all, func(i, j int) bool { return all[i].Lo < all[j].Lo })
	overs := 0
	out := all[:1]
	for _, f := range all[1:] {
		last := &out[len(out)-1]
		switch {
		case f.Lo < last.Hi:
			return nil, 0, fmt.Errorf("fragments %v and %v overlap", *last, f)
		case f.Lo == last.Hi:
			last.Hi = f.Hi
			overs++
		default:
			out = append(out, f)
		}
	}
	return out, overs, nil
}
