// rttrace merges per-rank Chrome trace files from a distributed run into
// one causally-stitched timeline and reports the critical path of the
// composition.
//
// Each rank of an rtnode run writes its own trace (-trace-out out-rNN.json)
// against its own clock; rtsim -chaos -trace-per-rank does the same for the
// in-process fabric. rttrace aligns the clocks using the flow edges the
// transports embed on every message, writes a single merged file, and
// prints where the wall-clock time of the run actually went:
//
//	rttrace -o merged.json out-r*.json
//	rttrace -strict out-r0.json out-r1.json     # fail on half-open flows
//
// The merged file opens in chrome://tracing or ui.perfetto.dev with arrows
// drawn between the send and receive spans of every message. -strict exits
// non-zero when any send flow lacks a matching receive (or vice versa) —
// on a run without message loss that indicates broken instrumentation.
package main

import (
	"flag"
	"fmt"
	"os"

	"rtcomp/internal/trace"
)

func main() {
	var (
		out    = flag.String("o", "", "write the merged Chrome trace JSON to this file")
		strict = flag.Bool("strict", false, "exit non-zero if any flow edge is half-open")
		quiet  = flag.Bool("q", false, "suppress the critical-path report")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: rttrace [-o merged.json] [-strict] trace-r0.json [trace-r1.json ...]")
		os.Exit(2)
	}

	m, err := trace.MergeFiles(flag.Args()...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("merged %d file(s): %d event(s), %d send / %d recv flow(s)\n",
		flag.NArg(), m.Events(), m.Sends, m.Recvs)
	for i, off := range m.OffsetsUS {
		if off != 0 {
			fmt.Printf("  %s: clock offset %+.1fus\n", flag.Arg(i), off)
		}
	}
	if serr := m.Strict(); serr != nil {
		fmt.Fprintln(os.Stderr, "rttrace:", serr)
		if *strict {
			os.Exit(1)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := m.Write(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s — open in chrome://tracing\n", *out)
	}

	if !*quiet {
		if cp := m.CriticalPath(); cp != nil {
			fmt.Println()
			fmt.Print(cp.Report())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rttrace:", err)
	os.Exit(1)
}
