// rtrender runs the full parallel volume rendering pipeline — partition,
// shear-warp render, image composition, warp — on the in-process fabric and
// writes the final image.
//
// Usage:
//
//	rtrender -dataset head -p 8 -method nrt:3 -codec trle -o head.png
//	rtrender -dataset engine -serial -o ref.pgm        # serial reference
//	rtrender -volfile scan.rtvol -tf 60:220:245:120    # render a saved volume
//	rtrender -dataset brain -frames 12 -o orbit.png    # camera orbit series
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"rtcomp/internal/core"
	"rtcomp/internal/raster"
	"rtcomp/internal/shearwarp"
	"rtcomp/internal/stats"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/trace"
	"rtcomp/internal/volume"
	"rtcomp/internal/xfer"
)

func main() {
	var (
		dataset  = flag.String("dataset", "engine", "phantom dataset: engine, head, brain")
		volN     = flag.Int("voln", 128, "phantom resolution")
		volfile  = flag.String("volfile", "", "render a saved .rtvol volume instead of a phantom")
		tfSpec   = flag.String("tf", "", "transfer function window lo:hi:value:alpha (default: dataset preset)")
		p        = flag.Int("p", 8, "processor (goroutine rank) count")
		method   = flag.String("method", "nrt:4", "composition method: bs, pp, ds, tree, radixk, nrt:N, 2nrt:N, rt:N")
		cdc      = flag.String("codec", "trle", "wire codec: raw, rle, trle, bspan")
		size     = flag.Int("size", 512, "final image edge in pixels")
		yaw      = flag.Float64("yaw", 0.35, "camera yaw in radians")
		pitch    = flag.Float64("pitch", 0.2, "camera pitch in radians")
		out      = flag.String("o", "out.png", "output file (.png or .pgm)")
		accel    = flag.Bool("accel", false, "enable the opacity-coherence render acceleration")
		rle      = flag.Bool("rle", false, "render from a run-length encoded classified volume (fastest)")
		part     = flag.String("partition", "1d", "render-stage partitioning: 1d (depth slabs) or 2d (image tiles)")
		frames   = flag.Int("frames", 1, "render a yaw orbit of this many frames (out-NNN suffixes)")
		serial   = flag.Bool("serial", false, "render serially instead (reference image)")
		traceOut = flag.String("trace-out", "", "write per-rank telemetry as Chrome trace JSON (and print the per-step table)")
	)
	flag.Parse()

	m, err := core.ParseMethod(*method)
	if err != nil {
		fatal(err)
	}
	// Telemetry stays nil (free) unless a trace was asked for.
	var rec *telemetry.Recorder
	if *traceOut != "" {
		rec = telemetry.New()
	}
	cfg := core.Config{
		Dataset:    *dataset,
		VolumeN:    *volN,
		Camera:     shearwarp.Camera{Yaw: *yaw, Pitch: *pitch},
		Width:      *size,
		Height:     *size,
		P:          *p,
		Method:     m,
		Codec:      *cdc,
		Accelerate: *accel,
		RLE:        *rle,
		Partition:  *part,
		Telemetry:  rec,
	}

	var vol *volume.Volume
	var tf *xfer.Func
	if *volfile != "" {
		vol, err = volume.Load(*volfile)
		if err != nil {
			fatal(err)
		}
		tf = xfer.ForDataset(*dataset)
	}
	if *tfSpec != "" {
		tf, err = xfer.Parse(*tfSpec)
		if err != nil {
			fatal(err)
		}
	}

	for f := 0; f < *frames; f++ {
		frameCfg := cfg
		if *frames > 1 {
			frameCfg.Camera.Yaw = *yaw + 2*math.Pi*float64(f)/float64(*frames)
		}
		img, err := renderOne(frameCfg, vol, tf, *serial, *frames == 1)
		if err != nil {
			fatal(err)
		}
		path := *out
		if *frames > 1 {
			path = framePath(*out, f)
		}
		if err := writeImage(img, path); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%dx%d, %.0f%% blank)\n", path, img.W, img.H, 100*img.BlankFraction())
	}
	if rec != nil {
		fmt.Println()
		fmt.Print(telemetry.StepTable(rec.Summaries(*p)))
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		werr := trace.WriteChromeSpans(f, rec.Spans())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fatal(werr)
		}
		fmt.Printf("wrote %s (%d spans) — open in chrome://tracing or ui.perfetto.dev\n", *traceOut, len(rec.Spans()))
	}
}

// renderOne renders a single frame, printing the stage report for single-
// frame runs.
func renderOne(cfg core.Config, vol *volume.Volume, tf *xfer.Func, serial, verbose bool) (*raster.Image, error) {
	if serial {
		if vol != nil || tf != nil {
			return nil, fmt.Errorf("-serial supports phantom datasets only")
		}
		return core.RenderSerial(cfg)
	}
	var rep *core.FrameReport
	var err error
	switch {
	case vol != nil:
		if tf == nil {
			tf = xfer.ForDataset(cfg.Dataset)
		}
		rep, err = core.RenderParallelVolume(cfg, vol, tf)
	case tf != nil:
		v := volume.ByName(cfg.Dataset, cfg.VolumeN)
		if v == nil {
			return nil, fmt.Errorf("unknown dataset %q", cfg.Dataset)
		}
		rep, err = core.RenderParallelVolume(cfg, v, tf)
	default:
		rep, err = core.RenderParallel(cfg)
	}
	if err != nil {
		return nil, err
	}
	if verbose {
		var raw, wire, over int64
		for _, r := range rep.Reports {
			raw += r.RawBytes
			wire += r.WireBytes
			over += r.OverPixels
		}
		fmt.Printf("dataset=%s p=%d method=%s codec=%s partition=%s\n",
			cfg.Dataset, cfg.P, cfg.Method, cfg.Codec, cfg.Partition)
		fmt.Printf("render (slowest rank): %v\n", rep.RenderTime)
		fmt.Printf("composite+gather wall: %v\n", rep.CompositeAll)
		fmt.Printf("warp:                  %v\n", rep.WarpTime)
		fmt.Printf("composition traffic:   %s raw -> %s on the wire, %d over-pixels\n",
			stats.IBytes(raw), stats.IBytes(wire), over)
	}
	return rep.Image, nil
}

// framePath inserts a frame number before the extension:
// orbit.png -> orbit-007.png.
func framePath(base string, f int) string {
	ext := ""
	stem := base
	if i := strings.LastIndexByte(base, '.'); i >= 0 {
		stem, ext = base[:i], base[i:]
	}
	return fmt.Sprintf("%s-%03d%s", stem, f, ext)
}

func writeImage(img *raster.Image, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".pgm") {
		_, err = f.Write(img.EncodePGM())
		return err
	}
	return img.WritePNG(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtrender:", err)
	os.Exit(1)
}
