package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"rtcomp/internal/transport/tcpnet"
)

// TestMultiProcess builds the rtnode binary and runs a real P-process
// distributed render over TCP sockets — the full deployment path, one OS
// process per rank.
func TestMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "rtnode")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building rtnode: %v\n%s", err, out)
	}

	const p = 3
	addrs, err := tcpnet.LoopbackAddrs(p)
	if err != nil {
		t.Fatal(err)
	}
	addrList := strings.Join(addrs, ",")
	outFile := filepath.Join(dir, "final.pgm")

	var wg sync.WaitGroup
	outputs := make([]bytes.Buffer, p)
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cmd := exec.Command(bin,
				"-rank", strconv.Itoa(r),
				"-addrs", addrList,
				"-dataset", "engine",
				"-voln", "48",
				"-size", "96",
				"-method", "2nrt:4",
				"-codec", "trle",
				"-accel",
				"-o", outFile,
			)
			cmd.Stdout = &outputs[r]
			cmd.Stderr = &outputs[r]
			errs[r] = cmd.Run()
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d failed: %v\n%s", r, errs[r], outputs[r].String())
		}
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatalf("rank 0 produced no image: %v", err)
	}
	if !bytes.HasPrefix(data, []byte("P5\n96 96\n255\n")) {
		t.Fatalf("output is not the expected 96x96 PGM: %q", data[:20])
	}
	if len(data) != len("P5\n96 96\n255\n")+96*96 {
		t.Fatalf("PGM payload truncated: %d bytes", len(data))
	}
	if !strings.Contains(outputs[0].String(), "rank 0 wrote") {
		t.Fatalf("rank 0 output missing confirmation:\n%s", outputs[0].String())
	}
	// Non-root ranks report their traffic.
	if !strings.Contains(outputs[1].String(), "msgs sent") {
		t.Fatalf("rank 1 output missing traffic report:\n%s", outputs[1].String())
	}
}
