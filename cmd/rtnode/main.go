// rtnode runs one rank of the distributed rendering pipeline over raw TCP
// sockets — the multi-process deployment of the library. Start P processes
// with the same -addrs list and ranks 0..P-1; rank 0 writes the final
// image.
//
//	rtnode -rank 0 -addrs host0:7000,host1:7000 -dataset head -o head.png &
//	rtnode -rank 1 -addrs host0:7000,host1:7000 -dataset head &
//
// For a single-machine demonstration, -local P runs all ranks in one
// process but still moves every byte through loopback TCP sockets:
//
//	rtnode -local 4 -dataset engine -method 2nrt:4 -o engine.png
//
// Observability: -trace-out writes the run's per-rank telemetry spans and
// causal message flows as Chrome trace-event JSON (open in chrome://tracing
// or Perfetto; merge the per-process -rNN files with rttrace), rank 0
// prints the cross-rank per-step timing/bytes table with latency quantiles,
// and -debug-addr serves live /metrics (Prometheus text), /debug/vars,
// /debug/flight and (unless -pprof=false) /debug/pprof while the node runs.
// SIGQUIT dumps the flight recorder's recent events to stderr without
// killing the process; a panic dumps it on the way down.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"rtcomp/internal/comm"
	"rtcomp/internal/compositor"
	"rtcomp/internal/core"
	"rtcomp/internal/gray"
	"rtcomp/internal/raster"
	"rtcomp/internal/shearwarp"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/trace"
	"rtcomp/internal/transport/tcpnet"
)

func main() {
	var (
		rank      = flag.Int("rank", -1, "this process's rank (multi-process mode)")
		addrs     = flag.String("addrs", "", "comma-separated listen addresses, one per rank")
		local     = flag.Int("local", 0, "run P ranks in-process over loopback TCP")
		dataset   = flag.String("dataset", "engine", "phantom dataset")
		volN      = flag.Int("voln", 128, "phantom resolution")
		method    = flag.String("method", "nrt:4", "composition method")
		cdc       = flag.String("codec", "trle", "wire codec")
		size      = flag.Int("size", 512, "final image edge in pixels")
		yaw       = flag.Float64("yaw", 0.35, "camera yaw in radians")
		pitch     = flag.Float64("pitch", 0.2, "camera pitch in radians")
		out       = flag.String("o", "out.png", "output file on rank 0 (.png or .pgm)")
		accel     = flag.Bool("accel", false, "enable the opacity-coherence render acceleration")
		rle       = flag.Bool("rle", false, "render from a run-length encoded classified volume (fastest)")
		part      = flag.String("partition", "1d", "render-stage partitioning: 1d (depth slabs) or 2d (image tiles)")
		timeout   = flag.Duration("timeout", 30*time.Second, "mesh setup timeout")
		recvTO    = flag.Duration("recv-timeout", 0, "composition receive deadline (0 = wait forever)")
		missing   = flag.String("on-missing", "fail", "policy for missing contributions: fail, partial or recover")
		maxRec    = flag.Int("max-recoveries", 2, "re-execution budget of -on-missing recover (negative = fallback immediately)")
		spare     = flag.Bool("spare", false, "run as a standby for a dead -rank slot: rejoin via merkle-verified state transfer instead of rendering (requires -on-missing recover and -rejoin-timeout)")
		rejoinTO  = flag.Duration("rejoin-timeout", 0, "with -on-missing recover: bounded window the survivors wait for a -spare before degrading (0 disables rejoin; must match across ranks)")
		scrubRep  = flag.Bool("scrub-replicas", false, "re-hash buddy replicas after the exchange and repair silent corruption from the live copy (must match across ranks)")
		quiet     = flag.Bool("quiet-mesh", false, "suppress per-peer mesh setup progress")
		sessWin   = flag.Int("session-window", 0, "per-peer unacked frame window (0 = default)")
		reconnTO  = flag.Duration("reconnect-timeout", 0, "per-outage session resume budget (0 = default)")
		maxReconn = flag.Int("max-reconnects", 0, "redial attempts per outage (0 = default, negative disables reconnection)")
		heartbeat = flag.Duration("heartbeat", 0, "session heartbeat interval (0 = default, negative disables)")
		traceOut  = flag.String("trace-out", "", "write this run's telemetry as Chrome trace JSON (multi-process: a -rNN rank suffix is added; merge with rttrace)")
		debugAddr = flag.String("debug-addr", "", "serve live /metrics, /debug/vars, /debug/flight and /debug/pprof on this address")
		withPprof = flag.Bool("pprof", true, "expose /debug/pprof on -debug-addr (operator-facing node listener: on by default)")
		pipeline  = flag.Bool("pipeline", false, "per-tile pipelined composition: overlap render, exchange and gather")
		pipeWin   = flag.Int("pipeline-window", 0, "tiles in flight per rank with -pipeline (0 = default, negative = unbounded)")
		ilSeed    = flag.Int64("interleave-seed", 0, "deterministic receive-interleaving seed with -pipeline (0 = arrival order)")
		progress  = flag.Bool("progressive", false, "with -pipeline, log each intermediate tile as the gather root completes it")
		adaptive  = flag.Bool("adaptive", false, "per-peer adaptive receive deadlines learned from observed arrival latency")
		hedge     = flag.Bool("hedge", false, "with -pipeline, speculatively re-request overdue tile transfers from the origin's buddy replica")
		hedgeTh   = flag.Duration("hedge-threshold", 0, "how overdue a transfer must be before hedging (0 = adaptive estimate or built-in default)")
	)
	flag.Parse()

	m, err := core.ParseMethod(*method)
	if err != nil {
		fatal(err)
	}
	if _, err := compositor.ParsePolicy(*missing); err != nil {
		fatal(err)
	}
	sess := comm.SessionConfig{
		WindowFrames:      *sessWin,
		ReconnectTimeout:  *reconnTO,
		MaxReconnects:     *maxReconn,
		HeartbeatInterval: *heartbeat,
	}
	rec := telemetry.New()
	defer rec.DumpFlightOnPanic(os.Stderr)
	dumpFlightOnQuit(rec)
	if *debugAddr != "" {
		srv := telemetry.NewServer(*debugAddr, telemetry.Mux(rec, *withPprof))
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "rtnode: debug server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "rtnode: serving /metrics, /debug/vars, /debug/flight on http://%s (pprof: %v)\n", *debugAddr, *withPprof)
	}
	mkConfig := func(p int) core.Config {
		cfg := core.Config{
			Dataset:        *dataset,
			VolumeN:        *volN,
			Camera:         shearwarp.Camera{Yaw: *yaw, Pitch: *pitch},
			Width:          *size,
			Height:         *size,
			P:              p,
			Method:         m,
			Codec:          *cdc,
			Accelerate:     *accel,
			RLE:            *rle,
			Partition:      *part,
			RecvTimeout:    *recvTO,
			OnMissing:      *missing,
			MaxRecoveries:  *maxRec,
			RejoinTimeout:  *rejoinTO,
			ScrubReplicas:  *scrubRep,
			Telemetry:      rec,
			Pipeline:       *pipeline,
			PipelineWindow: *pipeWin,
			InterleaveSeed: *ilSeed,

			AdaptiveDeadline: *adaptive,
			Hedge:            *hedge,
			HedgeThreshold:   *hedgeTh,
		}
		if *pipeline && *progress {
			// The callback fires on the gather root only, as each tile of
			// the intermediate image becomes final.
			cfg.OnPartialFrame = func(f compositor.PartialFrame) {
				fmt.Fprintf(os.Stderr, "rtnode: tile %d ready (%d/%d, pixels %d..%d)\n",
					f.Tile, f.Done, f.Total, f.Span.Lo, f.Span.Hi)
			}
		}
		return cfg
	}

	if *spare && (*missing != "recover" || *rejoinTO <= 0) {
		fatal(fmt.Errorf("-spare requires -on-missing recover and a positive -rejoin-timeout"))
	}
	if *local > 0 {
		flushOnSignal(rec, *traceOut, func() []telemetry.Summary { return rec.Summaries(*local) })
		if err := runLocal(*local, mkConfig(*local), rec, *out, *traceOut, *timeout, sess); err != nil {
			fatal(err)
		}
		return
	}

	list := strings.Split(*addrs, ",")
	if *addrs == "" || *rank < 0 || *rank >= len(list) {
		fatal(fmt.Errorf("need -rank in [0,%d) and -addrs with one address per rank (or -local P)", len(list)))
	}
	tracePath := ""
	if *traceOut != "" {
		tracePath = rankedPath(*traceOut, *rank)
	}
	flushOnSignal(rec, tracePath, func() []telemetry.Summary { return []telemetry.Summary{rec.Summary(*rank)} })
	// One rank per process here, so the session layer and the compositor can
	// share one health tracker: frames replayed to a peer after an outage
	// count toward the same gray-failure score its deadline misses do.
	var nodeHealth *gray.Health
	if *adaptive || *hedge {
		nodeHealth = gray.NewHealth(gray.HealthConfig{}, rec, *rank)
		sess.OnReplay = func(peer, frames int) { nodeHealth.Retransmit(peer, frames) }
	}
	ep, err := tcpnet.Start(tcpnet.Config{
		Rank:        *rank,
		Addrs:       list,
		DialTimeout: *timeout,
		Logf:        meshLogf(*quiet),
		Telemetry:   rec,
		Session:     sess,
	})
	if err != nil {
		fatal(err)
	}
	defer ep.Close()
	cfg := mkConfig(len(list))
	cfg.Health = nodeHealth
	render := core.RenderRank
	if *spare {
		// Standby mode: skip rendering, announce for the dead slot, restore
		// state from the mesh's merkle-verified transfer and finish the frame
		// as a full member.
		render = core.SpareRank
	}
	img, rep, err := render(ep, cfg)
	if err != nil {
		fatal(err)
	}
	warnDegraded(rep)
	noteRecovered(rep)
	noteRejoined(rep)
	fmt.Printf("rank %d: %d msgs sent, %d bytes sent, %d over-pixels\n",
		*rank, rep.Comm.MsgsSent, rep.Comm.BytesSent, rep.OverPixels)
	fmt.Printf("rank %d comm: %s\n", *rank, rep.Comm)
	// Cluster-wide totals, reduced to rank 0 over the same sockets. The
	// teardown collectives run under the composition's receive deadline:
	// after a recovered frame some peers are dead, and a missing summary
	// must cost a warning, not a wedged process.
	var seq comm.Sequencer
	totals, err := comm.ReduceSumTimeout(ep, &seq, 0,
		[]int64{rep.Comm.MsgsSent, rep.Comm.BytesSent, rep.OverPixels}, *recvTO)
	if err != nil {
		if !comm.IsRecoverable(err) {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rtnode: WARNING: cluster totals incomplete: %v\n", err)
	}
	if totals != nil {
		fmt.Printf("cluster totals: %d msgs, %d bytes, %d over-pixels\n",
			totals[0], totals[1], totals[2])
	}
	// Cross-rank telemetry: every rank ships its summary to rank 0, which
	// prints the per-step timing/bytes table (partial if peers are dead).
	summaries, err := telemetry.GatherSummaries(ep, &seq, 0, rec.Summary(*rank), *recvTO)
	if err != nil {
		if !comm.IsRecoverable(err) {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rtnode: WARNING: telemetry table incomplete: %v\n", err)
	}
	if summaries != nil {
		fmt.Println()
		fmt.Print(telemetry.StepTable(summaries))
	}
	if *traceOut != "" {
		path := rankedPath(*traceOut, *rank)
		if err := writeTrace(rec, path); err != nil {
			fatal(err)
		}
		fmt.Printf("rank %d wrote %s — open in chrome://tracing or ui.perfetto.dev\n", *rank, path)
	}
	if img != nil {
		if err := writeImage(img, *out); err != nil {
			fatal(err)
		}
		fmt.Printf("rank 0 wrote %s\n", *out)
	}
}

// meshLogf returns the per-peer mesh setup progress logger — the antidote
// to a rank silently blocking on a peer that never comes up.
func meshLogf(quiet bool) func(format string, args ...any) {
	if quiet {
		return nil
	}
	return func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
}

// warnDegraded surfaces a compose-partial result that is missing
// contributions, so a flagged image is never mistaken for a complete one.
func warnDegraded(rep *compositor.Report) {
	if rep == nil || !rep.Degraded {
		return
	}
	fmt.Fprintf(os.Stderr,
		"rtnode: WARNING: rank %d composed a DEGRADED image: %d missing transfer(s), %d blank layer-pixel(s), %d missing gather(s); comm: %s\n",
		rep.Rank, rep.MissingTransfers, rep.MissingLayerPix, rep.MissingGathers, rep.Comm)
}

// noteRecovered surfaces a recover-policy frame that lost ranks but still
// certified a complete image from the replicated sub-images.
func noteRecovered(rep *compositor.Report) {
	if rep == nil || !rep.Recovered {
		return
	}
	fmt.Fprintf(os.Stderr,
		"rtnode: rank %d RECOVERED a complete image: %d re-executed epoch(s), dead rank(s) %v contributed from replicas\n",
		rep.Rank, rep.RecoveryEpochs, rep.RecoveredRanks)
}

// noteRejoined surfaces a self-healed frame: a spare took over a dead slot
// via verified state transfer and the mesh committed at full capacity.
func noteRejoined(rep *compositor.Report) {
	if rep == nil || !rep.Rejoined {
		return
	}
	fmt.Fprintf(os.Stderr,
		"rtnode: rank %d REJOINED mesh healed: slot(s) %v re-admitted over %d join round(s), frame committed at full capacity\n",
		rep.Rank, rep.RejoinedRanks, rep.RejoinEpochs)
}

// dumpFlightOnQuit makes SIGQUIT dump the flight recorder's recent events
// to stderr and keep running — the live "what just happened" probe for a
// node that looks wedged, without sacrificing the process the way the Go
// runtime's default SIGQUIT goroutine dump does.
func dumpFlightOnQuit(rec *telemetry.Recorder) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		for range ch {
			fmt.Fprintln(os.Stderr, "rtnode: SIGQUIT")
			if err := rec.WriteFlight(os.Stderr); err != nil {
				fmt.Fprintf(os.Stderr, "rtnode: flight dump: %v\n", err)
			}
		}
	}()
}

// flushOnSignal makes SIGINT/SIGTERM flush the observability before dying:
// the trace file (when -trace-out is set) and the partial telemetry table
// land on disk/stderr even when the run is interrupted mid-frame — exactly
// the moment the spans are most needed.
func flushOnSignal(rec *telemetry.Recorder, tracePath string, summarize func() []telemetry.Summary) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		fmt.Fprintf(os.Stderr, "rtnode: caught %v, flushing partial telemetry\n", sig)
		if tracePath != "" {
			if err := writeTrace(rec, tracePath); err != nil {
				fmt.Fprintf(os.Stderr, "rtnode: trace flush: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "rtnode: wrote %s (partial)\n", tracePath)
			}
		}
		fmt.Fprint(os.Stderr, telemetry.StepTable(summarize()))
		os.Exit(130)
	}()
}

func runLocal(p int, cfg core.Config, rec *telemetry.Recorder, out, traceOut string, timeout time.Duration, sess comm.SessionConfig) error {
	// ListenLoopback hands each rank an already-bound listener, so the
	// kernel-assigned ports cannot be stolen between discovery and Start.
	lns, addrs, err := tcpnet.ListenLoopback(p)
	if err != nil {
		return err
	}
	var final *raster.Image
	var mu sync.Mutex
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer rec.DumpFlightOnPanic(os.Stderr)
			ep, err := tcpnet.Start(tcpnet.Config{
				Rank: r, Addrs: addrs, Listener: lns[r],
				DialTimeout: timeout, Telemetry: rec, Session: sess,
			})
			if err != nil {
				errs[r] = fmt.Errorf("mesh setup: %w", err)
				return
			}
			defer ep.Close()
			img, rep, err := core.RenderRank(ep, cfg)
			if err != nil {
				errs[r] = err
				return
			}
			warnDegraded(rep)
			fmt.Printf("rank %d: %d msgs, %d bytes over TCP (comm: %s)\n",
				r, rep.Comm.MsgsSent, rep.Comm.BytesSent, rep.Comm)
			if img != nil {
				mu.Lock()
				final = img
				mu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
	}
	if final == nil {
		return fmt.Errorf("no final image produced")
	}
	// All ranks share one recorder in -local mode, so the per-step table
	// aggregates in-process without a collective.
	fmt.Println()
	fmt.Print(telemetry.StepTable(rec.Summaries(p)))
	if traceOut != "" {
		if err := writeTrace(rec, traceOut); err != nil {
			return err
		}
		fmt.Printf("wrote %s — open in chrome://tracing or ui.perfetto.dev\n", traceOut)
	}
	if err := writeImage(final, out); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%dx%d)\n", out, final.W, final.H)
	return nil
}

// rankedPath inserts a rank suffix before the extension so P processes
// sharing one -trace-out value on a shared filesystem do not clobber each
// other: trace.json -> trace-r03.json.
func rankedPath(base string, rank int) string {
	ext := ""
	stem := base
	if i := strings.LastIndexByte(base, '.'); i >= 0 {
		stem, ext = base[:i], base[i:]
	}
	return fmt.Sprintf("%s-r%02d%s", stem, rank, ext)
}

// writeTrace dumps the recorder's spans plus causal flow edges as Chrome
// trace-event JSON — the per-rank input of an rttrace merge.
func writeTrace(rec *telemetry.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteChromeSpansFlows(f, rec.Spans(), rec.Flows())
}

func writeImage(img *raster.Image, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".pgm") {
		_, err = f.Write(img.EncodePGM())
		return err
	}
	return img.WritePNG(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtnode:", err)
	os.Exit(1)
}
