// rtsim runs a single composition under the virtual-time SP2 simulator and
// reports its timing, traffic, per-rank Gantt chart and (optionally) a
// Chrome trace-event file for chrome://tracing or Perfetto.
//
//	rtsim -dataset engine -p 16 -method 2nrt:4 -codec trle
//	rtsim -p 8 -method bs -gantt -trace bs.json
//
// With -chaos the composition instead runs for real on the in-process
// fabric wrapped in the fault-injection middleware, reporting whether the
// schedule survived the configured fault mix:
//
//	rtsim -p 8 -method nrt:4 -chaos -drop 0.3 -resend 8 -recv-timeout 2s
//	rtsim -p 5 -method pp -chaos -die-after 3 -recv-timeout 1s -on-missing partial
//
// With -chaos -conn-reset N the run instead uses a real loopback TCP mesh
// and severs N live connections at seeded-random step boundaries; the
// session layer must resume each one without the composition noticing:
//
//	rtsim -p 4 -method nrt:4 -chaos -conn-reset 3 -codec trle
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rtcomp/internal/codec"
	"rtcomp/internal/core"
	"rtcomp/internal/experiments"
	"rtcomp/internal/shearwarp"
	"rtcomp/internal/simnet"
	"rtcomp/internal/stats"
	"rtcomp/internal/trace"
)

func main() {
	var (
		dataset   = flag.String("dataset", "engine", "phantom dataset")
		volN      = flag.Int("voln", 128, "phantom resolution")
		p         = flag.Int("p", 32, "processor count")
		method    = flag.String("method", "2nrt:4", "composition method")
		cdc       = flag.String("codec", "raw", "wire codec")
		size      = flag.Int("size", 512, "composite image edge in pixels")
		machine   = flag.String("machine", "sp2", "machine model: sp2 or paper")
		gantt     = flag.Bool("gantt", false, "print the per-rank occupancy chart")
		traceFile = flag.String("trace", "", "write a Chrome trace-event JSON file")
		traceOut  = flag.String("trace-out", "", "with -chaos: write the real run's telemetry as Chrome trace JSON (otherwise same as -trace)")
		tracePR   = flag.Bool("trace-per-rank", false, "with -chaos -trace-out: write one -rNN trace file per rank (merge with rttrace)")
		dotFile   = flag.String("dot", "", "write the schedule as a Graphviz digraph")

		chaos     = flag.Bool("chaos", false, "run for real on the fault-injected in-process fabric")
		chaosSeed = flag.Int64("seed", 1, "chaos: fault stream seed")
		drop      = flag.Float64("drop", 0, "chaos: per-attempt message drop probability")
		resend    = flag.Int("resend", 0, "chaos: retransmission attempts per dropped message")
		delayProb = flag.Float64("delay-prob", 0, "chaos: delivery jitter probability")
		maxDelay  = flag.Duration("max-delay", 5*time.Millisecond, "chaos: jitter bound")
		dup       = flag.Float64("dup", 0, "chaos: duplicate delivery probability")
		corrupt   = flag.Float64("corrupt", 0, "chaos: payload corruption probability")
		dieAfter  = flag.Int("die-after", 0, "chaos: kill the last rank after this many sends (0 = never)")
		kill      = flag.Bool("kill", false, "chaos: kill the last rank right after its replica ships (shorthand for -die-after 1)")
		spareF    = flag.Bool("spare", false, "chaos: register a standby for the killed rank's slot; it must rejoin via merkle-verified state transfer and the run must end REJOINED (requires -on-missing recover)")
		rejoinTO  = flag.Duration("rejoin-timeout", 0, "chaos: bounded window the survivors wait for a -spare before degrading (default 10x -recv-timeout when -spare is set)")
		scrubF    = flag.Bool("scrub", false, "chaos: re-hash buddy replicas after the exchange and repair silent corruption from the live copy")
		connReset = flag.Int("conn-reset", 0, "chaos: sever this many live TCP connections at seeded-random steps over a loopback mesh (0 = use the in-process fabric)")
		brownout  = flag.Duration("brownout", 0, "chaos: gray failure — every delivery from one seeded-random non-root rank is delayed by this much (slow, not dead)")
		hedgeF    = flag.Bool("hedge", false, "chaos: speculatively re-request overdue tile transfers from the origin's buddy (pipelined compositor only)")
		hedgeTh   = flag.Duration("hedge-threshold", 0, "chaos: how overdue a transfer must be before hedging (0 = adaptive estimate or built-in default)")
		adaptive  = flag.Bool("adaptive", false, "chaos: per-peer adaptive receive deadlines learned from observed latency")
		recvTO    = flag.Duration("recv-timeout", 2*time.Second, "chaos: composition receive deadline")
		missing   = flag.String("on-missing", "fail", "chaos: missing-data policy (fail, partial or recover)")
		maxRec    = flag.Int("max-recoveries", 2, "chaos: re-execution budget of -on-missing recover")
		pipeline  = flag.Bool("pipeline", false, "chaos: run the per-tile pipelined compositor (the -seed value also seeds its receive interleaver)")
	)
	flag.Parse()

	var params simnet.Params
	switch *machine {
	case "sp2":
		params = simnet.SP2Calibrated()
	case "paper":
		params = simnet.PaperExample()
	default:
		fatal(fmt.Errorf("unknown machine %q", *machine))
	}

	m, err := core.ParseMethod(*method)
	if err != nil {
		fatal(err)
	}
	m, err = m.ResolveN(*p, *size**size)
	if err != nil {
		fatal(err)
	}
	sched, err := m.Schedule(*p)
	if err != nil {
		fatal(err)
	}
	c, err := codec.ByName(*cdc)
	if err != nil {
		fatal(err)
	}

	o := experiments.DefaultOptions()
	o.Dataset = *dataset
	o.VolumeN = *volN
	o.Width, o.Height = *size, *size
	o.Camera = shearwarp.Camera{Yaw: 0.35, Pitch: 0.2}
	layers, err := experiments.Partials(o, *p)
	if err != nil {
		fatal(err)
	}

	if *chaos && *connReset > 0 {
		err := runChaosConnReset(connResetConfig{
			sched: sched, layers: layers, cdc: c,
			seed: *chaosSeed, cuts: *connReset, recvTimeout: *recvTO,
			pipeline: *pipeline,
		})
		if err != nil {
			fatal(err)
		}
		return
	}
	if *chaos {
		if *kill && *dieAfter == 0 {
			*dieAfter = 1
		}
		if *spareF {
			if *missing != "recover" {
				fatal(fmt.Errorf("-spare requires -on-missing recover"))
			}
			if *rejoinTO == 0 {
				*rejoinTO = 10 * *recvTO
			}
		}
		err := runChaos(chaosConfig{
			sched: sched, layers: layers, cdc: c,
			seed: *chaosSeed, drop: *drop, resend: *resend,
			delayProb: *delayProb, maxDelay: *maxDelay,
			dup: *dup, corrupt: *corrupt, dieAfter: *dieAfter,
			brownout: *brownout, hedge: *hedgeF, hedgeThreshold: *hedgeTh, adaptive: *adaptive,
			recvTimeout: *recvTO, onMissing: *missing, maxRecoveries: *maxRec,
			spare: *spareF, rejoinTimeout: *rejoinTO, scrub: *scrubF,
			traceOut: *traceOut, tracePerRank: *tracePR, gantt: *gantt, pipeline: *pipeline,
		})
		if err != nil {
			fatal(err)
		}
		return
	}
	if *traceFile == "" {
		*traceFile = *traceOut
	}

	res, err := simnet.Simulate(sched, layers, c, params)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("method=%s codec=%s machine=%s p=%d image=%dx%d\n", m, *cdc, params.Name, *p, *size, *size)
	fmt.Printf("composition time: %s\n", stats.Seconds(res.Time))
	fmt.Printf("traffic: %d msgs, %s raw -> %s wire, %d over-pixels\n",
		res.Msgs, stats.IBytes(res.RawBytes), stats.IBytes(res.WireBytes), res.OverPixels)
	fmt.Printf("avg rank utilisation: %.0f%%\n", 100*trace.Utilisation(res.Events, *p, res.Time))

	if *gantt {
		fmt.Println()
		fmt.Print(trace.Gantt(res.Events, *p, 96, res.Time))
	}
	if *dotFile != "" {
		if err := os.WriteFile(*dotFile, []byte(sched.ToDOT()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s — render with `dot -Tsvg`\n", *dotFile)
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trace.WriteChromeTrace(f, res.Events); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d events) — open in chrome://tracing\n", *traceFile, len(res.Events))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtsim:", err)
	os.Exit(1)
}
