package main

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"os"

	"rtcomp/internal/codec"
	"rtcomp/internal/comm"
	"rtcomp/internal/compose"
	"rtcomp/internal/compositor"
	"rtcomp/internal/gray"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/trace"
	"rtcomp/internal/transport/faulty"
	"rtcomp/internal/transport/inproc"
)

// chaosConfig parameterises one fault-injected composition run.
type chaosConfig struct {
	sched  *schedule.Schedule
	layers []*raster.Image
	cdc    codec.Codec

	seed      int64
	drop      float64
	resend    int
	delayProb float64
	maxDelay  time.Duration
	dup       float64
	corrupt   float64
	dieAfter  int
	// dieAfter applies to the last rank only, so the run demonstrates the
	// survivors' behaviour rather than killing everyone.

	// Gray-failure knobs: brownout delays every delivery from one
	// seeded-random non-root rank (slow, not dead); hedge/adaptive turn on
	// the compositor's speculative re-requests and learned deadlines. A
	// brownout run that evicts the slow rank is a failure — the whole
	// point is masking slowness without declaring death.
	brownout       time.Duration
	hedge          bool
	hedgeThreshold time.Duration
	adaptive       bool

	recvTimeout   time.Duration
	onMissing     string
	maxRecoveries int // re-execution budget of the recover policy

	// Self-healing knobs: spare launches a standby for the killed rank's
	// slot that rejoins via merkle-verified state transfer (the run must end
	// REJOINED, not RECOVERED); rejoinTimeout bounds how long the survivors
	// hold the door open; scrub re-hashes buddy replicas after the exchange
	// and repairs silent corruption from the live copy.
	spare         bool
	rejoinTimeout time.Duration
	scrub         bool

	traceOut     string // write the real run's telemetry as Chrome trace JSON
	tracePerRank bool   // split -trace-out into per-rank -rNN files (rttrace merge input)
	gantt        bool   // print the per-rank span occupancy chart
	pipeline     bool   // run the per-tile pipelined compositor
}

// runChaos executes the schedule for real on the in-process fabric with
// every rank's endpoint wrapped in the fault-injection middleware, then
// reports whether the composition survived: a correct image, a flagged
// degraded image, or a typed per-rank error — never a hang.
func runChaos(cc chaosConfig) error {
	policy, err := compositor.ParsePolicy(cc.onMissing)
	if err != nil {
		return err
	}
	p := cc.sched.P
	plan := faulty.Plan{
		Seed: cc.seed, Drop: cc.drop, MaxResend: cc.resend,
		DelayProb: cc.delayProb, MaxDelay: cc.maxDelay,
		DupProb: cc.dup, CorruptProb: cc.corrupt,
	}
	// Rendered partials carry general alpha, where u8 over is associative
	// only up to rounding; compare against the float-accumulated reference
	// with the same +-2 level tolerance the correctness suite uses.
	want := compose.SerialCompositeF(cc.layers)
	const tol = 2

	rec := telemetry.New()
	plan.Telemetry = rec
	var mu sync.Mutex
	var final *raster.Image
	reports := make([]*compositor.Report, p)
	rankErrs := make([]error, p)
	stats := make([]faulty.Stats, p)
	t0 := time.Now()
	// RunTel hands the fabric the recorder, so every message carries a
	// trace context and leaves send/recv flow edges for the trace export.
	// The browned-out rank is seeded-random but never the gather root: the
	// root waiting on itself would mask nothing interesting.
	slow := -1
	if cc.brownout > 0 && p >= 2 {
		slow = 1 + rand.New(rand.NewSource(cc.seed)).Intn(p-1)
	}
	mkOpts := func(rank int) compositor.Options {
		opts := compositor.Options{
			Codec:         cc.cdc,
			GatherRoot:    0,
			RecvTimeout:   cc.recvTimeout,
			OnMissing:     policy,
			MaxRecoveries: cc.maxRecoveries,
			RejoinTimeout: cc.rejoinTimeout,
			ScrubReplicas: cc.scrub,
			Telemetry:     rec,
			Pipeline: compositor.PipelineConfig{
				Enabled:        cc.pipeline,
				InterleaveSeed: cc.seed,
				Hedge:          compositor.HedgeConfig{Enabled: cc.hedge, Threshold: cc.hedgeThreshold},
			},
		}
		if cc.adaptive {
			opts.Adaptive = gray.NewEstimator(gray.Config{Static: cc.recvTimeout})
		}
		if cc.brownout > 0 || cc.adaptive {
			opts.Health = gray.NewHealth(gray.HealthConfig{}, rec, rank)
		}
		return opts
	}
	runRank := func(inner comm.Comm) error {
		rankPlan := plan
		if cc.dieAfter > 0 && inner.Rank() == p-1 {
			rankPlan.DieAfterSends = cc.dieAfter
		}
		if inner.Rank() == slow {
			rankPlan.Brownout = cc.brownout
			// The brownout sets in after the rank's first send, so setup
			// traffic (notably its replica, under -on-missing recover) lands
			// on time — modelling a mid-run onset rather than a rank that was
			// slow from birth, and giving the buddy something to hedge from.
			rankPlan.BrownoutAfterSends = 1
		}
		ep := faulty.Wrap(inner, rankPlan)
		img, rep, err := compositor.Run(ep, cc.sched, cc.layers[inner.Rank()], mkOpts(inner.Rank()))
		mu.Lock()
		defer mu.Unlock()
		reports[inner.Rank()] = rep
		rankErrs[inner.Rank()] = err
		stats[inner.Rank()] = ep.Stats()
		if img != nil {
			final = img
		}
		return nil
	}
	var spareRep *compositor.Report
	var spareErr error
	if cc.spare {
		// A standby is registered for the victim's slot, so the fabric is
		// managed by hand: the victim's rank slot gets a fresh mailbox after
		// its incarnation dies, and the spare rejoins through the
		// merkle-verified transfer while the survivors hold the frame open.
		fab := inproc.New(p)
		fab.SetTelemetry(rec)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				ep := fab.Endpoint(r)
				_ = runRank(ep)
				ep.Close()
				if r != p-1 || cc.dieAfter <= 0 {
					return
				}
				sep := fab.Reattach(r)
				sp := faulty.Wrap(sep, plan) // the framing layer, no kill
				img, rep, err := compositor.RunSpare(sp, cc.sched, mkOpts(r))
				sep.Close()
				mu.Lock()
				defer mu.Unlock()
				spareRep, spareErr = rep, err
				if img != nil {
					final = img
				}
			}(r)
		}
		wg.Wait()
	} else {
		inproc.RunTel(p, rec, runRank)
	}
	elapsed := time.Since(t0)

	fmt.Printf("chaos: method=%s p=%d seed=%d drop=%g resend=%d delay=%g dup=%g corrupt=%g die-after=%d policy=%s pipeline=%v\n",
		cc.sched.Name, p, cc.seed, cc.drop, cc.resend, cc.delayProb, cc.dup, cc.corrupt, cc.dieAfter, policy, cc.pipeline)
	var tot faulty.Stats
	for _, s := range stats {
		tot.Dropped += s.Dropped
		tot.Lost += s.Lost
		tot.Resent += s.Resent
		tot.Delayed += s.Delayed
		tot.Duplicated += s.Duplicated
		tot.Corrupted += s.Corrupted
		tot.RejectedCRC += s.RejectedCRC
	}
	fmt.Printf("chaos: injected %d drop(s) (%d lost, %d resends), %d delay(s), %d dup(s), %d corruption(s), %d CRC reject(s)\n",
		tot.Dropped, tot.Lost, tot.Resent, tot.Delayed, tot.Duplicated, tot.Corrupted, tot.RejectedCRC)

	// Under the recover policy the intentionally killed rank is expected to
	// die with a typed error; only survivor errors count as failure.
	victim := -1
	if policy == compositor.Recover && cc.dieAfter > 0 {
		victim = p - 1
	}
	failed := 0
	for r, err := range rankErrs {
		if err != nil {
			if r == victim {
				fmt.Printf("chaos: rank %d (victim) died as planned: %v\n", r, err)
				continue
			}
			failed++
			fmt.Printf("chaos: rank %d error: %v\n", r, err)
		}
	}
	allReports := reports
	if cc.spare {
		if spareErr != nil {
			failed++
			fmt.Printf("chaos: spare for rank %d error: %v\n", p-1, spareErr)
		} else if spareRep != nil {
			allReports = append(append([]*compositor.Report(nil), reports...), spareRep)
		}
	}
	degraded := false
	recovered := false
	rejoined := false
	epochs := 0
	evicted := map[int]bool{}
	for _, rep := range allReports {
		if rep == nil {
			continue
		}
		if rep.Rejoined {
			rejoined = true
			fmt.Printf("chaos: rank %d rejoined: slot(s) %v re-admitted over %d join round(s)\n",
				rep.Rank, rep.RejoinedRanks, rep.RejoinEpochs)
		}
		if rep.Degraded {
			degraded = true
			fmt.Printf("chaos: rank %d degraded: %d missing transfer(s), %d blank layer-pixel(s), %d missing gather(s)\n",
				rep.Rank, rep.MissingTransfers, rep.MissingLayerPix, rep.MissingGathers)
		}
		if rep.Recovered {
			recovered = true
			if rep.RecoveryEpochs > epochs {
				epochs = rep.RecoveryEpochs
			}
			for _, r := range rep.RecoveredRanks {
				evicted[r] = true
			}
			fmt.Printf("chaos: rank %d recovered: %d epoch(s), replicas stood in for rank(s) %v\n",
				rep.Rank, rep.RecoveryEpochs, rep.RecoveredRanks)
		}
	}
	sum := func(name string) int64 {
		var n int64
		for k, v := range rec.Counters() {
			if k.Name == name {
				n += v
			}
		}
		return n
	}
	if slow >= 0 || cc.hedge || cc.adaptive {
		// One greppable line for the CI brownout job: the hedging and
		// grace counters, and how many ranks were actually evicted.
		fmt.Printf("# gray: slow-rank=%d brownout=%v hedge_requests=%d hedge_wins=%d hedge_served=%d hedge_wasted=%d grace=%d escalations=%d evictions=%d\n",
			slow, cc.brownout,
			sum(telemetry.CtrHedgeRequests), sum(telemetry.CtrHedgeWins),
			sum(telemetry.CtrHedgeServed), sum(telemetry.CtrHedgeWasted),
			sum(telemetry.CtrDeadlineGrace), sum(telemetry.CtrHealthEscalations),
			len(evicted))
	}
	// A brownout is slow-not-dead: evicting the slow rank (absent a real
	// victim) means the gray-failure machinery false-positived.
	if slow >= 0 && victim < 0 && evicted[slow] {
		return fmt.Errorf("chaos: browned-out rank %d was FALSELY EVICTED (slow, not dead)", slow)
	}
	if cc.spare || cc.rejoinTimeout > 0 || cc.scrub {
		// One greppable line for the CI self-healing job: join and scrub
		// counters, and how many ranks ended the frame evicted. A healed run
		// verifies every transferred chunk and evicts nobody.
		fmt.Printf("# rejoin: spare=%v rejoins=%d rejoin_verified_chunks=%d rejoin_rejected_chunks=%d scrub_ok=%d scrub_repaired=%d scrub_failed=%d evictions=%d\n",
			cc.spare, sum(telemetry.CtrRejoins),
			sum(telemetry.CtrRejoinVerifiedChunks), sum(telemetry.CtrRejoinRejectedChunks),
			sum(telemetry.CtrScrubOK), sum(telemetry.CtrScrubRepaired), sum(telemetry.CtrScrubFailed),
			len(evicted))
	}
	// The real run's telemetry: per-step timing/bytes table aggregated
	// across ranks, optional span Gantt and Chrome trace export.
	fmt.Println()
	fmt.Print(telemetry.StepTable(rec.Summaries(p)))
	if cc.gantt {
		fmt.Println()
		fmt.Print(trace.SpanGantt(rec.Spans(), p, 96))
	}
	if cc.traceOut != "" {
		if err := writeChaosTraces(rec, cc.traceOut, cc.tracePerRank, p); err != nil {
			return err
		}
	}
	// The black box of anything that went wrong: a failed rank or a
	// recovery carries its recent event history onto stdout, the same dump
	// a FailFast stall embeds in its error.
	if (failed > 0 || recovered) && rec.FlightDump() != "" {
		fmt.Println()
		fmt.Println(rec.FlightDump())
	}

	switch {
	case failed > 0:
		fmt.Printf("chaos: FAILED CLEANLY in %v — %d rank(s) returned typed errors, no hang\n", elapsed, failed)
		if victim >= 0 {
			return fmt.Errorf("chaos: %d survivor(s) errored under the recover policy", failed)
		}
	case final == nil:
		fmt.Printf("chaos: no final image in %v\n", elapsed)
		if victim >= 0 {
			return fmt.Errorf("chaos: recover policy delivered no image")
		}
	case rejoined && raster.MaxDiff(final, want) <= tol:
		fmt.Printf("chaos: REJOINED in %v — mesh healed at full capacity, image matches the fault-free composite (maxdiff %d, tolerance %d)\n",
			elapsed, raster.MaxDiff(final, want), tol)
	case recovered && raster.MaxDiff(final, want) <= tol:
		fmt.Printf("chaos: RECOVERED in %v — %d re-executed epoch(s), image matches the fault-free composite (maxdiff %d, tolerance %d)\n",
			elapsed, epochs, raster.MaxDiff(final, want), tol)
	case degraded:
		fmt.Printf("chaos: DEGRADED image composed in %v (maxdiff vs reference: %d)\n",
			elapsed, raster.MaxDiff(final, want))
	case raster.MaxDiff(final, want) <= tol:
		if victim >= 0 {
			// A victim was configured but nobody recovered: the kill never
			// fired (die-after beyond the send count) or went unnoticed —
			// either way the CI invariant did not get exercised.
			return fmt.Errorf("chaos: image is complete but no rank flagged Recovered with a victim configured")
		}
		fmt.Printf("chaos: SURVIVED in %v — image matches the fault-free composite (maxdiff %d, tolerance %d)\n",
			elapsed, raster.MaxDiff(final, want), tol)
	default:
		return fmt.Errorf("chaos: composed image DIFFERS from the fault-free composite (maxdiff %d > %d) without being flagged degraded",
			raster.MaxDiff(final, want), tol)
	}
	return nil
}

// writeChaosTraces exports the run's spans and causal flow edges as Chrome
// trace JSON: one shared file, or (perRank) one -rNN file per rank holding
// only that rank's events — the input shape of an rttrace merge, which the
// CI trace-smoke job stitches back together and validates.
func writeChaosTraces(rec *telemetry.Recorder, path string, perRank bool, p int) error {
	spans, flows := rec.Spans(), rec.Flows()
	if !perRank {
		if err := writeTraceFile(path, spans, flows); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d spans, %d flow events) — open in chrome://tracing or ui.perfetto.dev\n",
			path, len(spans), len(flows))
		return nil
	}
	for r := 0; r < p; r++ {
		var rs []telemetry.Span
		for _, s := range spans {
			if s.Rank == r {
				rs = append(rs, s)
			}
		}
		var rf []telemetry.Flow
		for _, f := range flows {
			if f.Rank == r {
				rf = append(rf, f)
			}
		}
		rp := rankedPath(path, r)
		if err := writeTraceFile(rp, rs, rf); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d spans, %d flow events)\n", rp, len(rs), len(rf))
	}
	fmt.Printf("merge with: rttrace -o merged.json %s\n", rankedPath(path, 0))
	return nil
}

func writeTraceFile(path string, spans []telemetry.Span, flows []telemetry.Flow) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := trace.WriteChromeSpansFlows(f, spans, flows)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// rankedPath inserts a rank suffix before the extension:
// trace.json -> trace-r03.json.
func rankedPath(base string, rank int) string {
	ext := ""
	stem := base
	if i := strings.LastIndexByte(base, '.'); i >= 0 {
		stem, ext = base[:i], base[i:]
	}
	return fmt.Sprintf("%s-r%02d%s", stem, rank, ext)
}
