package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"rtcomp/internal/codec"
	"rtcomp/internal/compose"
	"rtcomp/internal/compositor"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/transport/tcpnet"
)

// connResetConfig parameterises a chaos run that severs live TCP
// connections mid-composition instead of perturbing individual messages.
type connResetConfig struct {
	sched  *schedule.Schedule
	layers []*raster.Image
	cdc    codec.Codec

	seed        int64
	cuts        int
	recvTimeout time.Duration
	pipeline    bool
}

// connCut is one planned severing: at the top of step, cutter closes its
// live connection to victim.
type connCut struct {
	step, cutter, victim int
	fired                sync.Once
}

// runChaosConnReset runs the schedule over a real loopback TCP mesh and
// severs seeded-random live connections at step boundaries. The session
// layer must resume each one transparently: every rank finishes without
// error, nothing is flagged degraded or recovered, and the image is
// byte-for-byte the fault-free composite (up to u8 rounding tolerance).
func runChaosConnReset(cc connResetConfig) error {
	p := cc.sched.P
	want := compose.SerialCompositeF(cc.layers)
	const tol = 2

	rng := rand.New(rand.NewSource(cc.seed))
	cuts := make([]*connCut, cc.cuts)
	for i := range cuts {
		cutter := rng.Intn(p)
		victim := rng.Intn(p - 1)
		if victim >= cutter {
			victim++
		}
		cuts[i] = &connCut{step: rng.Intn(cc.sched.NumSteps()), cutter: cutter, victim: victim}
	}

	rec := telemetry.New()
	lns, addrs, err := tcpnet.ListenLoopback(p)
	if err != nil {
		return err
	}
	var mu sync.Mutex
	var final *raster.Image
	var severed atomic.Int64
	reports := make([]*compositor.Report, p)
	rankErrs := make([]error, p)
	t0 := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep, err := tcpnet.Start(tcpnet.Config{
				Rank: r, Addrs: addrs, Listener: lns[r],
				DialTimeout: 30 * time.Second, Telemetry: rec,
			})
			if err != nil {
				mu.Lock()
				rankErrs[r] = fmt.Errorf("mesh setup: %w", err)
				mu.Unlock()
				return
			}
			defer ep.Close()
			img, rep, err := compositor.Run(ep, cc.sched, cc.layers[r], compositor.Options{
				Codec:       cc.cdc,
				GatherRoot:  0,
				RecvTimeout: cc.recvTimeout,
				OnMissing:   compositor.FailFast,
				Telemetry:   rec,
				Pipeline: compositor.PipelineConfig{
					Enabled:        cc.pipeline,
					InterleaveSeed: cc.seed,
				},
				OnStep: func(si int) {
					for _, cut := range cuts {
						if cut.cutter != r || cut.step != si {
							continue
						}
						cut.fired.Do(func() {
							if ep.CutConn(cut.victim) {
								severed.Add(1)
								fmt.Printf("chaos: step %d: rank %d severed its connection to rank %d\n",
									si, r, cut.victim)
							}
						})
					}
				},
			})
			mu.Lock()
			defer mu.Unlock()
			reports[r] = rep
			rankErrs[r] = err
			if img != nil {
				final = img
			}
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	fmt.Printf("chaos: conn-reset method=%s p=%d seed=%d planned-cuts=%d severed=%d pipeline=%v\n",
		cc.sched.Name, p, cc.seed, cc.cuts, severed.Load(), cc.pipeline)

	failed := 0
	for r, err := range rankErrs {
		if err != nil {
			failed++
			fmt.Printf("chaos: rank %d error: %v\n", r, err)
		}
	}
	visible := false
	for _, rep := range reports {
		if rep == nil {
			continue
		}
		if rep.Degraded || rep.Recovered {
			visible = true
			fmt.Printf("chaos: rank %d fault became visible: degraded=%v recovered=%v (%d epoch(s))\n",
				rep.Rank, rep.Degraded, rep.Recovered, rep.RecoveryEpochs)
		}
	}

	fmt.Println()
	fmt.Print(telemetry.StepTable(rec.Summaries(p)))

	// The session layer's own tallies, summed across ranks: the proof that
	// the outages were absorbed below the composition protocol.
	sess := map[string]int64{}
	for _, s := range rec.Summaries(p) {
		for _, c := range s.Counters {
			sess[c.Name] += c.Value
		}
	}
	fmt.Printf("# session: reconnects=%d replayed_frames=%d dup_frames_dropped=%d acks_sent=%d heartbeats=%d\n",
		sess[telemetry.CtrReconnects], sess[telemetry.CtrReplayedFrames],
		sess[telemetry.CtrDupFramesDropped], sess[telemetry.CtrAcksSent],
		sess[telemetry.CtrHeartbeats])

	switch {
	case failed > 0:
		return fmt.Errorf("chaos: %d rank(s) returned errors — connection loss leaked above the session layer", failed)
	case final == nil:
		return fmt.Errorf("chaos: no final image produced")
	case visible:
		return fmt.Errorf("chaos: transient connection loss was visible to the composition protocol")
	case raster.MaxDiff(final, want) > tol:
		return fmt.Errorf("chaos: composed image DIFFERS from the fault-free composite (maxdiff %d > %d)",
			raster.MaxDiff(final, want), tol)
	}
	fmt.Printf("chaos: SURVIVED in %v — %d severed connection(s) resumed invisibly, image matches the fault-free composite (maxdiff %d, tolerance %d)\n",
		elapsed, severed.Load(), raster.MaxDiff(final, want), tol)
	return nil
}
