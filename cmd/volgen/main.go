// volgen generates, inspects and converts the phantom volume datasets: the
// file-based half of the pipeline, so volumes can be rendered repeatedly
// (or shipped to rtnode ranks) without regenerating them.
//
//	volgen -dataset head -n 128 -o head.rtvol     # generate and save
//	volgen -i head.rtvol -stats                   # inspect an .rtvol file
package main

import (
	"flag"
	"fmt"
	"os"

	"rtcomp/internal/volume"
)

func main() {
	var (
		dataset = flag.String("dataset", "engine", "phantom dataset: engine, head, brain")
		n       = flag.Int("n", 128, "cubic resolution")
		out     = flag.String("o", "", "output .rtvol path (default <dataset>.rtvol)")
		in      = flag.String("i", "", "inspect an existing .rtvol instead of generating")
		raw     = flag.String("raw", "", "import a headerless 8-bit raw volume (Chapel Hill format)")
		rawDims = flag.String("rawdims", "", "raw volume dimensions as NXxNYxNZ, e.g. 256x256x128")
		down    = flag.Int("downsample", 1, "downsample the volume by this factor before saving")
		stats   = flag.Bool("stats", true, "print histogram statistics")
	)
	flag.Parse()

	var vol *volume.Volume
	switch {
	case *raw != "":
		var nx, ny, nz int
		if _, err := fmt.Sscanf(*rawDims, "%dx%dx%d", &nx, &ny, &nz); err != nil {
			fatal(fmt.Errorf("-raw needs -rawdims NXxNYxNZ: %v", err))
		}
		v, err := volume.LoadRaw(*raw, nx, ny, nz)
		if err != nil {
			fatal(err)
		}
		vol = v
		path := *out
		if path == "" {
			path = *raw + ".rtvol"
		}
		if err := vol.Save(path); err != nil {
			fatal(err)
		}
		fmt.Printf("imported %s -> %s: %dx%dx%d\n", *raw, path, nx, ny, nz)
	case *in != "":
		v, err := volume.Load(*in)
		if err != nil {
			fatal(err)
		}
		vol = v
		fmt.Printf("%s: %dx%dx%d (%d voxels)\n", *in, vol.NX, vol.NY, vol.NZ, vol.NVoxels())
	default:
		vol = volume.ByName(*dataset, *n)
		if vol == nil {
			fatal(fmt.Errorf("unknown dataset %q (have %v)", *dataset, volume.Datasets))
		}
		path := *out
		if path == "" {
			path = *dataset + ".rtvol"
		}
		if err := vol.Save(path); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %dx%dx%d (%d voxels)\n", path, vol.NX, vol.NY, vol.NZ, vol.NVoxels())
	}

	if *down > 1 {
		d, err := vol.Downsample(*down)
		if err != nil {
			fatal(err)
		}
		vol = d
		path := *out
		if path == "" {
			path = fmt.Sprintf("%s-div%d.rtvol", *dataset, *down)
		}
		if err := vol.Save(path); err != nil {
			fatal(err)
		}
		fmt.Printf("downsampled /%d -> %s: %dx%dx%d\n", *down, path, vol.NX, vol.NY, vol.NZ)
	}

	if *stats {
		h := vol.Histogram()
		nonAir := 0
		minV, maxV := -1, 0
		for s := 1; s < 256; s++ {
			if h[s] > 0 {
				nonAir += h[s]
				if minV < 0 {
					minV = s
				}
				maxV = s
			}
		}
		fmt.Printf("occupied: %.1f%% of voxels, densities in [%d, %d]\n",
			100*float64(nonAir)/float64(vol.NVoxels()), minV, maxV)
		// Coarse 8-bucket histogram of non-air voxels.
		var buckets [8]int
		for s := 1; s < 256; s++ {
			buckets[s/32] += h[s]
		}
		for b, cnt := range buckets {
			if cnt == 0 {
				continue
			}
			bar := cnt * 48 / maxIntOf(buckets[:])
			fmt.Printf("  [%3d-%3d] %8d %s\n", b*32, b*32+31, cnt, strRepeat('#', bar))
		}
	}
}

func maxIntOf(xs []int) int {
	m := 1
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func strRepeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "volgen:", err)
	os.Exit(1)
}
