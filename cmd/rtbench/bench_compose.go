// Allocation-budget benchmarks for the composition hot path: every
// method x codec x P cell runs real compositions over the in-process
// fabric under testing.Benchmark with allocation reporting, emits the
// machine-readable BENCH_compose.json, and (when a budget file is given)
// fails the process if allocs/op regresses above the committed ceiling —
// the CI tripwire that keeps the steady state allocation-free.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"rtcomp/internal/codec"
	"rtcomp/internal/comm"
	"rtcomp/internal/compositor"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/transport/inproc"
)

// benchRow is one cell of the composition benchmark matrix.
type benchRow struct {
	Method      string  `json:"method"`
	Codec       string  `json:"codec"`
	P           int     `json:"p"`
	Pipeline    bool    `json:"pipeline,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// RawBytes and WireBytes are the summed pre-codec and encoded payload
	// bytes all ranks shipped in one composition — the codec's compression
	// on this workload, measured from the run reports so the wire win and
	// its time cost sit in the same row.
	RawBytes  int64 `json:"raw_bytes,omitempty"`
	WireBytes int64 `json:"wire_bytes,omitempty"`
	// OverlapRatio is the mean per-rank tile concurrency of a pipelined
	// run: sum of PhaseTile span durations over the rank's tile-processing
	// wall extent. 1.0 means tiles ran strictly one after another; above 1
	// is the overlap the pipeline exists to create. Zero for sync rows.
	OverlapRatio float64 `json:"overlap_ratio,omitempty"`
	// Latency quantiles of the same instrumented pipelined run, merged
	// across ranks from the run's log-bucketed histograms: tile claim ->
	// fully composited, and run start -> progressive tile delivery at the
	// gather root. Zero for sync rows.
	TileP50Ns    int64 `json:"tile_p50_ns,omitempty"`
	TileP95Ns    int64 `json:"tile_p95_ns,omitempty"`
	TileP99Ns    int64 `json:"tile_p99_ns,omitempty"`
	PartialP50Ns int64 `json:"partial_p50_ns,omitempty"`
	PartialP95Ns int64 `json:"partial_p95_ns,omitempty"`
	PartialP99Ns int64 `json:"partial_p99_ns,omitempty"`
	// Load-generator rows (Method "load") report what the admission gate
	// did to a request storm: end-to-end latency of served requests
	// through admit + composite, the fraction shed, and the offered total.
	Clients  int     `json:"clients,omitempty"`
	Offered  int     `json:"offered,omitempty"`
	LatP50Ns int64   `json:"lat_p50_ns,omitempty"`
	LatP99Ns int64   `json:"lat_p99_ns,omitempty"`
	ShedRate float64 `json:"shed_rate,omitempty"`
}

func (r benchRow) key() string {
	k := fmt.Sprintf("%s/%s/p%d", r.Method, r.Codec, r.P)
	if r.Pipeline {
		k += "/pipe"
	}
	return k
}

// benchEdge is the composite image edge: small enough for a CI smoke run,
// large enough that payload buffers land in real pool classes.
const benchEdge = 128

// benchSchedules builds the method column of the matrix for one P.
func benchSchedules(p int) (map[string]*schedule.Schedule, error) {
	rt, err := schedule.RT(p, 4)
	if err != nil {
		return nil, err
	}
	bs, err := schedule.BinarySwap(p)
	if err != nil {
		return nil, err
	}
	pp, err := schedule.Pipeline(p)
	if err != nil {
		return nil, err
	}
	return map[string]*schedule.Schedule{"rt4": rt, "bs": bs, "pp": pp}, nil
}

// benchLayers renders deterministic pseudo-layers: banded alpha so the RLE
// and TRLE codecs see both blank and dense runs, different per rank so the
// composite is not degenerate.
func benchLayers(p, w, h int) []*raster.Image {
	layers := make([]*raster.Image, p)
	for r := range layers {
		img := raster.New(w, h)
		for i := 0; i < len(img.Pix); i += raster.BytesPerPixel {
			px := i / raster.BytesPerPixel
			if (px/(w/4)+r)%3 == 0 {
				continue // transparent band
			}
			img.Pix[i] = uint8((px + 17*r) % 256)
			img.Pix[i+1] = uint8(128 + (px+r)%128)
		}
		layers[r] = img
	}
	return layers
}

// measureOverlap runs one instrumented pipelined composition and reduces
// its PhaseTile spans to the mean per-rank tile concurrency: for each rank,
// the summed tile span durations divided by the wall extent the rank spent
// processing tiles. Strictly sequential tile handling scores 1.0; the
// pipeline's whole point is to score above it. The recorder is returned so
// the caller can also mine the run's latency histograms.
func measureOverlap(sched *schedule.Schedule, layers []*raster.Image, opts compositor.Options) (float64, *telemetry.Recorder, error) {
	rec := telemetry.New()
	opts.Telemetry = rec
	err := inproc.Run(sched.P, func(c comm.Comm) error {
		_, _, err := compositor.Run(c, sched, layers[c.Rank()], opts)
		return err
	})
	if err != nil {
		return 0, nil, err
	}
	type ext struct {
		sum, lo, hi time.Duration
	}
	per := map[int]*ext{}
	for _, s := range rec.Spans() {
		if s.Name != telemetry.PhaseTile {
			continue
		}
		e := per[s.Rank]
		if e == nil {
			e = &ext{lo: s.Start, hi: s.End}
			per[s.Rank] = e
		}
		e.sum += s.End - s.Start
		if s.Start < e.lo {
			e.lo = s.Start
		}
		if s.End > e.hi {
			e.hi = s.End
		}
	}
	if len(per) == 0 {
		return 0, nil, fmt.Errorf("pipelined run recorded no %s spans", telemetry.PhaseTile)
	}
	var tot float64
	for _, e := range per {
		if e.hi > e.lo {
			tot += float64(e.sum) / float64(e.hi-e.lo)
		}
	}
	return tot / float64(len(per)), rec, nil
}

// measureWire runs one composition and sums the per-rank raw and encoded
// payload bytes from the run reports.
func measureWire(sched *schedule.Schedule, layers []*raster.Image, opts compositor.Options) (raw, wire int64, err error) {
	var mu sync.Mutex
	err = inproc.Run(sched.P, func(c comm.Comm) error {
		_, rep, err := compositor.Run(c, sched, layers[c.Rank()], opts)
		mu.Lock()
		raw += rep.RawBytes
		wire += rep.WireBytes
		mu.Unlock()
		return err
	})
	return raw, wire, err
}

// benchCompose runs the full matrix, writes rows to outPath and, when
// budgetPath is non-empty, enforces the committed allocs/op ceilings.
func benchCompose(outPath, budgetPath string) error {
	codecs := []struct {
		name string
		cdc  codec.Codec
	}{
		{"raw", codec.Raw{}},
		{"rle", codec.RLE{}},
		{"trle", codec.TRLE{}},
	}
	var rows []benchRow
	for _, p := range []int{4, 8} {
		scheds, err := benchSchedules(p)
		if err != nil {
			return err
		}
		layers := benchLayers(p, benchEdge, benchEdge)
		for _, method := range []string{"rt4", "bs", "pp"} {
			sched := scheds[method]
			for _, cc := range codecs {
				for _, pipelined := range []bool{false, true} {
					opts := compositor.Options{Codec: cc.cdc, GatherRoot: 0}
					opts.Pipeline.Enabled = pipelined
					res := testing.Benchmark(func(b *testing.B) {
						b.ReportAllocs()
						for i := 0; i < b.N; i++ {
							err := inproc.Run(p, func(c comm.Comm) error {
								_, _, err := compositor.Run(c, sched, layers[c.Rank()], opts)
								return err
							})
							if err != nil {
								b.Fatal(err)
							}
						}
					})
					row := benchRow{
						Method:      method,
						Codec:       cc.name,
						P:           p,
						Pipeline:    pipelined,
						NsPerOp:     float64(res.NsPerOp()),
						BytesPerOp:  res.AllocedBytesPerOp(),
						AllocsPerOp: res.AllocsPerOp(),
					}
					raw, wire, err := measureWire(sched, layers, opts)
					if err != nil {
						return err
					}
					row.RawBytes, row.WireBytes = raw, wire
					if pipelined {
						ratio, rec, err := measureOverlap(sched, layers, opts)
						if err != nil {
							return err
						}
						row.OverlapRatio = ratio
						qs := rec.QuantileAll(telemetry.HistTileLatency, 0.50, 0.95, 0.99)
						row.TileP50Ns = int64(qs[0])
						row.TileP95Ns = int64(qs[1])
						row.TileP99Ns = int64(qs[2])
						qs = rec.QuantileAll(telemetry.HistPartialLatency, 0.50, 0.95, 0.99)
						row.PartialP50Ns = int64(qs[0])
						row.PartialP95Ns = int64(qs[1])
						row.PartialP99Ns = int64(qs[2])
					}
					rows = append(rows, row)
					fmt.Printf("%-20s %12.0f ns/op %12d B/op %8d allocs/op",
						row.key(), row.NsPerOp, row.BytesPerOp, row.AllocsPerOp)
					if pipelined {
						fmt.Printf("  overlap %.2fx  tile p50/p99 %v/%v",
							row.OverlapRatio, time.Duration(row.TileP50Ns), time.Duration(row.TileP99Ns))
					}
					fmt.Println()
				}
			}
		}
	}

	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows)\n", outPath, len(rows))

	if budgetPath == "" {
		return nil
	}
	raw, err := os.ReadFile(budgetPath)
	if err != nil {
		return fmt.Errorf("reading allocation budget: %w", err)
	}
	budget := map[string]int64{}
	if err := json.Unmarshal(raw, &budget); err != nil {
		return fmt.Errorf("parsing allocation budget: %w", err)
	}
	var failed int
	for _, row := range rows {
		limit, ok := budget[row.key()]
		if !ok {
			fmt.Printf("WARN %s: no committed budget, skipping\n", row.key())
			continue
		}
		if row.AllocsPerOp > limit {
			failed++
			fmt.Printf("FAIL %s: %d allocs/op exceeds budget %d\n", row.key(), row.AllocsPerOp, limit)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark cells regressed above the allocation budget", failed)
	}
	fmt.Println("all cells within the allocation budget")
	return nil
}
