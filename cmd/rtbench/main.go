// rtbench regenerates the paper's tables and figures. Each experiment
// prints the rows/series of one paper artifact; see EXPERIMENTS.md for the
// index.
//
// Usage:
//
//	rtbench -exp fig5                        # one experiment, paper scale
//	rtbench -exp all -quick                  # everything, scaled down
//	rtbench -exp fig6 -dataset head          # other datasets
//	rtbench -exp fig8 -csv > fig8.csv        # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rtcomp/internal/experiments"
	"rtcomp/internal/simnet"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		dataset = flag.String("dataset", "engine", "phantom dataset: engine, head, brain")
		p       = flag.Int("p", 0, "processor count (default: experiment default)")
		volN    = flag.Int("voln", 0, "phantom resolution (default: experiment default)")
		size    = flag.Int("size", 0, "composite image edge in pixels (default 512)")
		maxN    = flag.Int("maxn", 0, "initial-block sweep bound")
		quick   = flag.Bool("quick", false, "scaled-down run for smoke testing")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		outdir  = flag.String("outdir", "", "also write each table as a CSV file into this directory")
		machine = flag.String("machine", "sp2", "simulated machine: sp2 (calibrated) or paper (Section 2.3 constants)")

		benchComposeFlag = flag.Bool("bench-compose", false, "run the composition allocation benchmarks instead of experiments")
		benchOut         = flag.String("bench-out", "BENCH_compose.json", "output path for -bench-compose results")
		benchBudget      = flag.String("bench-budget", "", "allocation-budget JSON; with -bench-compose, exit nonzero if allocs/op regresses above it")
		benchLoadFlag    = flag.Bool("bench-load", false, "run the admission load benchmark instead of experiments")
		loadOut          = flag.String("load-out", "BENCH_load.json", "output path for -bench-load results")
	)
	flag.Parse()

	if *benchComposeFlag {
		if err := benchCompose(*benchOut, *benchBudget); err != nil {
			fmt.Fprintf(os.Stderr, "rtbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *benchLoadFlag {
		if err := benchLoad(*loadOut); err != nil {
			fmt.Fprintf(os.Stderr, "rtbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, s := range experiments.Registry() {
			fmt.Printf("%-10s %-12s %s\n", s.ID, "("+s.Paper+")", s.Title)
		}
		return
	}

	o := experiments.DefaultOptions()
	if *quick {
		o = experiments.QuickOptions()
	}
	o.Dataset = *dataset
	if *p > 0 {
		o.P = *p
	}
	if *volN > 0 {
		o.VolumeN = *volN
	}
	if *size > 0 {
		o.Width, o.Height = *size, *size
	}
	if *maxN > 0 {
		o.MaxN = *maxN
	}
	switch *machine {
	case "sp2":
		o.Sim = simnet.SP2Calibrated()
	case "paper":
		o.Sim = simnet.PaperExample()
	default:
		fmt.Fprintf(os.Stderr, "rtbench: unknown machine %q\n", *machine)
		os.Exit(2)
	}

	specs := experiments.Registry()
	if *exp != "all" {
		s, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "rtbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		specs = []experiments.Spec{s}
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "rtbench: %v\n", err)
			os.Exit(1)
		}
	}
	for _, s := range specs {
		tables, err := s.Run(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtbench: %s: %v\n", s.ID, err)
			os.Exit(1)
		}
		for ti, t := range tables {
			if *outdir != "" {
				path := filepath.Join(*outdir, fmt.Sprintf("%s-%d.csv", s.ID, ti))
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "rtbench: %v\n", err)
					os.Exit(1)
				}
				if err := t.CSV(f); err != nil {
					fmt.Fprintf(os.Stderr, "rtbench: %v\n", err)
					os.Exit(1)
				}
				f.Close()
			}
			if *csv {
				if err := t.CSV(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "rtbench: %v\n", err)
					os.Exit(1)
				}
				fmt.Println()
				continue
			}
			fmt.Println(t.String())
		}
	}
}
