// The admission load benchmark: a closed-loop request storm fired through
// the overload-aware admission gate at a real composite workload. Each cell
// reports the served requests' end-to-end latency quantiles and the shed
// rate, so the tradeoff the gate makes — fast answers for some, honest 503s
// for the rest — is a number in a JSON artifact instead of an anecdote.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"rtcomp/internal/admission"
	"rtcomp/internal/codec"
	"rtcomp/internal/comm"
	"rtcomp/internal/compositor"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/transport/inproc"
)

// loadCell is one offered-load level of the benchmark.
type loadCell struct {
	clients int // concurrent closed-loop clients
	reqs    int // requests per client
	slots   int // admission render slots
	queue   int // admission wait queue
}

// benchLoad runs the load matrix and writes Method="load" rows to outPath.
func benchLoad(outPath string) error {
	const p = 4
	sched, err := benchSchedules(p)
	if err != nil {
		return err
	}
	layers := benchLayers(p, benchEdge, benchEdge)
	target := sched["bs"]
	cdc := codec.TRLE{}

	// One composite through the in-process fabric is the unit of work the
	// gate admits — the same work the serving path does per frame.
	render := func(ctx context.Context) error {
		return inproc.Run(p, func(c comm.Comm) error {
			_, _, err := compositor.Run(c, target, layers[c.Rank()], compositor.Options{
				Codec: cdc, GatherRoot: 0,
			})
			return err
		})
	}

	cells := []loadCell{
		// Under capacity: everything served, nothing shed.
		{clients: 2, reqs: 20, slots: 2, queue: 4},
		// Well past capacity with a short queue: the gate must shed rather
		// than smear lateness across every request.
		{clients: 12, reqs: 20, slots: 2, queue: 2},
	}

	var rows []benchRow
	for _, cell := range cells {
		ctrl := admission.New(admission.Config{Slots: cell.slots, Queue: cell.queue, Seed: 1}, nil)
		var (
			mu      sync.Mutex
			lat     telemetry.Histogram
			shed    int
			failed  error
			offered = cell.clients * cell.reqs
		)
		var wg sync.WaitGroup
		for cl := 0; cl < cell.clients; cl++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < cell.reqs; i++ {
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					t0 := time.Now()
					release, err := ctrl.Admit(ctx)
					if err != nil {
						cancel()
						var se *admission.ShedError
						if errors.As(err, &se) {
							mu.Lock()
							shed++
							mu.Unlock()
							continue
						}
						mu.Lock()
						failed = err
						mu.Unlock()
						return
					}
					rerr := render(ctx)
					d := time.Since(t0)
					ctrl.ObserveRender(d)
					release()
					cancel()
					if rerr != nil {
						mu.Lock()
						failed = rerr
						mu.Unlock()
						return
					}
					lat.Observe(d)
				}
			}()
		}
		wg.Wait()
		if failed != nil {
			return fmt.Errorf("load cell %d clients: %w", cell.clients, failed)
		}
		row := benchRow{
			Method:   "load",
			Codec:    "trle",
			P:        p,
			Clients:  cell.clients,
			Offered:  offered,
			LatP50Ns: int64(lat.Quantile(0.50)),
			LatP99Ns: int64(lat.Quantile(0.99)),
			ShedRate: float64(shed) / float64(offered),
		}
		rows = append(rows, row)
		fmt.Printf("load p=%d clients=%-3d offered=%-4d served=%-4d shed=%.1f%%  p50 %v  p99 %v\n",
			p, cell.clients, offered, offered-shed, 100*row.ShedRate,
			time.Duration(row.LatP50Ns), time.Duration(row.LatP99Ns))
	}

	// Sanity the matrix proved something: the under-capacity cell must not
	// shed, the overload cell must shed *and* keep its served latency sane
	// (the whole argument for admission control).
	if rows[0].ShedRate != 0 {
		return fmt.Errorf("under-capacity cell shed %.1f%% of requests", 100*rows[0].ShedRate)
	}
	if rows[1].ShedRate == 0 {
		return fmt.Errorf("overload cell shed nothing: admission gate is not gating")
	}

	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows)\n", outPath, len(rows))
	return nil
}
