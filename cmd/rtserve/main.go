// rtserve is a tiny interactive viewer: an HTTP server that renders frames
// on demand with the full parallel pipeline and streams them back as PNG.
//
//	rtserve -listen :8080 -p 8
//	# then open http://localhost:8080/?dataset=head&yaw=0.6&pitch=0.2
//
// Endpoints:
//
//	GET /render?dataset=&yaw=&pitch=&size=&method=&codec=  -> image/png
//	GET /                                                  -> minimal HTML viewer
//	GET /metrics                                           -> Prometheus text telemetry
//	GET /debug/vars                                        -> expvar JSON
//	GET /debug/pprof/                                      -> Go profiler endpoints
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"rtcomp/internal/core"
	"rtcomp/internal/shearwarp"
	"rtcomp/internal/telemetry"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:8080", "listen address")
		p      = flag.Int("p", 8, "processor (goroutine rank) count per frame")
		volN   = flag.Int("voln", 96, "phantom resolution")
		slots  = flag.Int("slots", 2, "concurrent render slots; excess requests get 503 + Retry-After")
		reqTO  = flag.Duration("request-timeout", 30*time.Second, "per-request render deadline (0 = none)")
		pipe   = flag.Bool("pipeline", false, "compose frames with the per-tile pipelined compositor by default (per-request override: ?pipeline=0|1)")
		pprofF = flag.Bool("pprof", false, "expose /debug/pprof on the frame listener (off by default: whoever can fetch frames should not get CPU profiles)")
	)
	flag.Parse()

	srv := &server{p: *p, volN: *volN, rec: telemetry.New(), reqTO: *reqTO, pipeline: *pipe}
	if *slots > 0 {
		srv.slots = make(chan struct{}, *slots)
	}
	// An http.Server with explicit limits, not the timeout-less
	// http.ListenAndServe: a stalled client must not pin a handler forever.
	hs := telemetry.NewServer(*listen, newMux(srv, *pprofF))
	log.Printf("rtserve: listening on http://%s (p=%d, vol %d^3, %d slot(s)); telemetry at /metrics, /debug/vars, /debug/flight (pprof: %v)", *listen, *p, *volN, *slots, *pprofF)

	// Graceful shutdown: SIGINT/SIGTERM stops accepting, lets in-flight
	// renders drain (bounded), then exits — no frames cut off mid-PNG.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Print("rtserve: shutting down, draining in-flight renders")
		drain, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(drain); err != nil {
			log.Printf("rtserve: shutdown: %v", err)
		}
	}
}

// newMux wires the viewer endpoints and the live telemetry surface onto one
// mux — split out of main so tests can drive the full routing table.
func newMux(s *server, withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/render", s.render)
	mux.HandleFunc("/", s.index)
	debug := telemetry.Mux(s.rec, withPprof)
	mux.Handle("/metrics", debug)
	mux.Handle("/debug/", debug)
	return mux
}

type server struct {
	p, volN  int
	rec      *telemetry.Recorder // accumulates across frames; served at /metrics
	slots    chan struct{}       // admission semaphore; nil = unlimited
	reqTO    time.Duration       // per-request render deadline; 0 = none
	pipeline bool                // default composition mode; ?pipeline= overrides
}

// acquire takes a render slot without blocking. A full server answers 503
// with Retry-After instead of queueing: each render fans out P goroutines,
// so an unbounded queue turns a burst into a livelock.
func (s *server) acquire(w http.ResponseWriter) bool {
	if s.slots == nil {
		return true
	}
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		w.Header().Set("Retry-After", "1")
		http.Error(w, "all render slots busy", http.StatusServiceUnavailable)
		return false
	}
}

func (s *server) release() {
	if s.slots != nil {
		<-s.slots
	}
}

// queryFloat parses a float query parameter with a default.
func queryFloat(r *http.Request, key string, def float64) (float64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	return strconv.ParseFloat(s, 64)
}

func queryInt(r *http.Request, key string, def int) (int, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func (s *server) render(w http.ResponseWriter, r *http.Request) {
	yaw, err := queryFloat(r, "yaw", 0.35)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	pitch, err := queryFloat(r, "pitch", 0.2)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	size, err := queryInt(r, "size", 384)
	if err != nil || size < 16 || size > 2048 {
		http.Error(w, "size must be in [16, 2048]", http.StatusBadRequest)
		return
	}
	dataset := r.URL.Query().Get("dataset")
	if dataset == "" {
		dataset = "engine"
	}
	methodStr := r.URL.Query().Get("method")
	if methodStr == "" {
		methodStr = "nrt:auto"
	}
	method, err := core.ParseMethod(methodStr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	codec := r.URL.Query().Get("codec")
	if codec == "" {
		codec = "trle"
	}
	pipelined := s.pipeline
	if v := r.URL.Query().Get("pipeline"); v != "" {
		pipelined, err = strconv.ParseBool(v)
		if err != nil {
			http.Error(w, "pipeline must be a boolean", http.StatusBadRequest)
			return
		}
	}

	if !s.acquire(w) {
		return
	}
	defer s.release()

	cfg := core.Config{
		Dataset:    dataset,
		VolumeN:    s.volN,
		Camera:     shearwarp.Camera{Yaw: yaw, Pitch: pitch},
		Width:      size,
		Height:     size,
		P:          s.p,
		Method:     method,
		Codec:      codec,
		Accelerate: true,
		Pipeline:   pipelined,
		Telemetry:  s.rec,
	}
	// The render runs under the request's context plus the server's own
	// deadline: a client that gives up (or a hung frame) releases the slot
	// instead of pinning renderer goroutines forever.
	ctx := r.Context()
	if s.reqTO > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.reqTO)
		defer cancel()
	}
	rep, err := core.RenderParallelCtx(ctx, cfg)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			http.Error(w, "render exceeded the request deadline", http.StatusGatewayTimeout)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	w.Header().Set("X-Render-Time", rep.RenderTime.String())
	w.Header().Set("X-Composite-Time", rep.CompositeAll.String())
	w.Header().Set("X-Pipeline", strconv.FormatBool(pipelined))
	if err := rep.Image.WritePNG(w); err != nil {
		log.Printf("rtserve: writing png: %v", err)
	}
}

func (s *server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!doctype html>
<title>rtcomp viewer</title>
<style>body{font-family:sans-serif;margin:2em}img{border:1px solid #888;image-rendering:pixelated}</style>
<h1>rtcomp — rotate-tiling parallel volume renderer</h1>
<p>
  dataset <select id=d><option>engine</option><option>head</option><option>brain</option></select>
  yaw <input id=y type=range min=-3.1 max=3.1 step=0.05 value=0.35>
  pitch <input id=x type=range min=-1.2 max=1.2 step=0.05 value=0.2>
  method <select id=m><option>nrt:auto</option><option>2nrt:4</option><option>bs</option><option>pp</option><option>ds</option><option>radixk</option></select>
</p>
<img id=v width=384 height=384 alt="rendering...">
<script>
const img=document.getElementById('v');
function refresh(){
  const d=document.getElementById('d').value, y=document.getElementById('y').value,
        x=document.getElementById('x').value, m=document.getElementById('m').value;
  img.src='/render?dataset='+d+'&yaw='+y+'&pitch='+x+'&method='+encodeURIComponent(m);
}
for(const id of ['d','y','x','m']) document.getElementById(id).addEventListener('change',refresh);
refresh();
</script>`)
}
