// rtserve is a tiny interactive viewer: an HTTP server that renders frames
// on demand with the full parallel pipeline and streams them back as PNG.
//
//	rtserve -listen :8080 -p 8
//	# then open http://localhost:8080/?dataset=head&yaw=0.6&pitch=0.2
//
// Endpoints:
//
//	GET /render?dataset=&yaw=&pitch=&size=&method=&codec=  -> image/png
//	GET /                                                  -> minimal HTML viewer
//	GET /metrics                                           -> Prometheus text telemetry
//	GET /debug/vars                                        -> expvar JSON
//	GET /debug/pprof/                                      -> Go profiler endpoints
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"rtcomp/internal/admission"
	"rtcomp/internal/core"
	"rtcomp/internal/shearwarp"
	"rtcomp/internal/telemetry"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:8080", "listen address")
		p      = flag.Int("p", 8, "processor (goroutine rank) count per frame")
		volN   = flag.Int("voln", 96, "phantom resolution")
		slots  = flag.Int("slots", 2, "concurrent render slots; excess requests queue or get 503 + Retry-After")
		queue  = flag.Int("queue", 0, "requests allowed to wait for a slot beyond -slots; 0 sheds immediately when busy")
		reqTO  = flag.Duration("request-timeout", 30*time.Second, "per-request render deadline (0 = none); clients may tighten per request with ?deadline_ms= or X-Deadline-Ms")
		pipe   = flag.Bool("pipeline", false, "compose frames with the per-tile pipelined compositor by default (per-request override: ?pipeline=0|1)")
		pprofF = flag.Bool("pprof", false, "expose /debug/pprof on the frame listener (off by default: whoever can fetch frames should not get CPU profiles)")
	)
	flag.Parse()

	srv := &server{p: *p, volN: *volN, rec: telemetry.New(), reqTO: *reqTO, pipeline: *pipe}
	srv.adm = admission.New(admission.Config{Slots: *slots, Queue: *queue}, srv.rec)
	// An http.Server with explicit limits, not the timeout-less
	// http.ListenAndServe: a stalled client must not pin a handler forever.
	hs := telemetry.NewServer(*listen, newMux(srv, *pprofF))
	log.Printf("rtserve: listening on http://%s (p=%d, vol %d^3, %d slot(s), queue %d); telemetry at /metrics, /debug/vars, /debug/flight (pprof: %v)", *listen, *p, *volN, *slots, *queue, *pprofF)

	// Graceful shutdown: SIGINT/SIGTERM stops accepting, lets in-flight
	// renders drain (bounded), then exits — no frames cut off mid-PNG.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Print("rtserve: shutting down, draining in-flight renders")
		drain, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(drain); err != nil {
			log.Printf("rtserve: shutdown: %v", err)
		}
	}
}

// newMux wires the viewer endpoints and the live telemetry surface onto one
// mux — split out of main so tests can drive the full routing table.
func newMux(s *server, withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/render", s.render)
	mux.HandleFunc("/", s.index)
	debug := telemetry.Mux(s.rec, withPprof)
	mux.Handle("/metrics", debug)
	mux.Handle("/debug/", debug)
	return mux
}

type server struct {
	p, volN  int
	rec      *telemetry.Recorder   // accumulates across frames; served at /metrics
	adm      *admission.Controller // overload-aware admission; nil = unlimited
	reqTO    time.Duration         // per-request render deadline; 0 = none
	pipeline bool                  // default composition mode; ?pipeline= overrides
	reqSeq   atomic.Uint64         // generated X-Request-ID sequence
}

// requestID echoes the client's X-Request-ID or mints one, so a shed or a
// slow frame can be correlated between client logs, server logs and the
// flight recorder. The id is set on the response before any outcome is
// known — a 503 is exactly the response that most needs tracing.
func (s *server) requestID(w http.ResponseWriter, r *http.Request) string {
	id := r.Header.Get("X-Request-ID")
	if id == "" || len(id) > 128 {
		id = "rts-" + strconv.FormatUint(s.reqSeq.Add(1), 36) + "-" + strconv.FormatInt(time.Now().UnixNano()&0xFFFFFF, 36)
	}
	w.Header().Set("X-Request-ID", id)
	return id
}

// shedResponse turns an admission rejection into an honest 503: a jittered
// Retry-After (whole seconds, rounded up — zero would mean "hammer me
// again now") and the shed reason in the body.
func shedResponse(w http.ResponseWriter, shed *admission.ShedError) {
	secs := int64((shed.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	http.Error(w, fmt.Sprintf("render shed: %s (%d queued)", shed.Reason, shed.Queued),
		http.StatusServiceUnavailable)
}

// queryFloat parses a float query parameter with a default.
func queryFloat(r *http.Request, key string, def float64) (float64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	return strconv.ParseFloat(s, 64)
}

func queryInt(r *http.Request, key string, def int) (int, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func (s *server) render(w http.ResponseWriter, r *http.Request) {
	s.requestID(w, r)
	yaw, err := queryFloat(r, "yaw", 0.35)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	pitch, err := queryFloat(r, "pitch", 0.2)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	size, err := queryInt(r, "size", 384)
	if err != nil || size < 16 || size > 2048 {
		http.Error(w, "size must be in [16, 2048]", http.StatusBadRequest)
		return
	}
	dataset := r.URL.Query().Get("dataset")
	if dataset == "" {
		dataset = "engine"
	}
	methodStr := r.URL.Query().Get("method")
	if methodStr == "" {
		methodStr = "nrt:auto"
	}
	method, err := core.ParseMethod(methodStr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	codec := r.URL.Query().Get("codec")
	if codec == "" {
		codec = "trle"
	}
	pipelined := s.pipeline
	if v := r.URL.Query().Get("pipeline"); v != "" {
		pipelined, err = strconv.ParseBool(v)
		if err != nil {
			http.Error(w, "pipeline must be a boolean", http.StatusBadRequest)
			return
		}
	}

	// The render deadline is the tighter of the server's own bound and the
	// deadline the client propagated (?deadline_ms= or X-Deadline-Ms):
	// admission sheds against it, and the renderer's context honors it.
	deadline := s.reqTO
	dlStr := r.URL.Query().Get("deadline_ms")
	if dlStr == "" {
		dlStr = r.Header.Get("X-Deadline-Ms")
	}
	if dlStr != "" {
		ms, err := strconv.Atoi(dlStr)
		if err != nil || ms <= 0 {
			http.Error(w, "deadline_ms must be a positive integer", http.StatusBadRequest)
			return
		}
		if d := time.Duration(ms) * time.Millisecond; deadline == 0 || d < deadline {
			deadline = d
		}
	}
	ctx := r.Context()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	release, err := s.adm.Admit(ctx)
	if err != nil {
		var shed *admission.ShedError
		if errors.As(err, &shed) {
			shedResponse(w, shed)
			return
		}
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer release()

	cfg := core.Config{
		Dataset:    dataset,
		VolumeN:    s.volN,
		Camera:     shearwarp.Camera{Yaw: yaw, Pitch: pitch},
		Width:      size,
		Height:     size,
		P:          s.p,
		Method:     method,
		Codec:      codec,
		Accelerate: true,
		Pipeline:   pipelined,
		Telemetry:  s.rec,
	}
	t0 := time.Now()
	rep, err := core.RenderParallelCtx(ctx, cfg)
	if err != nil {
		// The deadline may surface directly or wrapped in whichever rank
		// tripped over the cancelled fabric first; either way, an expired
		// context is the request's own deadline, not a server fault.
		if errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil {
			http.Error(w, "render exceeded the request deadline", http.StatusGatewayTimeout)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.adm.ObserveRender(time.Since(t0))
	w.Header().Set("Content-Type", "image/png")
	w.Header().Set("X-Render-Time", rep.RenderTime.String())
	w.Header().Set("X-Composite-Time", rep.CompositeAll.String())
	w.Header().Set("X-Pipeline", strconv.FormatBool(pipelined))
	if err := rep.Image.WritePNG(w); err != nil {
		log.Printf("rtserve: writing png: %v", err)
	}
}

func (s *server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!doctype html>
<title>rtcomp viewer</title>
<style>body{font-family:sans-serif;margin:2em}img{border:1px solid #888;image-rendering:pixelated}</style>
<h1>rtcomp — rotate-tiling parallel volume renderer</h1>
<p>
  dataset <select id=d><option>engine</option><option>head</option><option>brain</option></select>
  yaw <input id=y type=range min=-3.1 max=3.1 step=0.05 value=0.35>
  pitch <input id=x type=range min=-1.2 max=1.2 step=0.05 value=0.2>
  method <select id=m><option>nrt:auto</option><option>2nrt:4</option><option>bs</option><option>pp</option><option>ds</option><option>radixk</option></select>
</p>
<img id=v width=384 height=384 alt="rendering...">
<script>
const img=document.getElementById('v');
function refresh(){
  const d=document.getElementById('d').value, y=document.getElementById('y').value,
        x=document.getElementById('x').value, m=document.getElementById('m').value;
  img.src='/render?dataset='+d+'&yaw='+y+'&pitch='+x+'&method='+encodeURIComponent(m);
}
for(const id of ['d','y','x','m']) document.getElementById(id).addEventListener('change',refresh);
refresh();
</script>`)
}
