package main

import (
	"image/png"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"rtcomp/internal/telemetry"
)

func TestRenderEndpoint(t *testing.T) {
	srv := &server{p: 2, volN: 32}

	req := httptest.NewRequest("GET", "/render?dataset=brain&yaw=0.4&pitch=0.1&size=64&method=2nrt:2", nil)
	rec := httptest.NewRecorder()
	srv.render(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/png" {
		t.Fatalf("content type %q", ct)
	}
	img, err := png.Decode(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 64 {
		t.Fatalf("decoded width %d", img.Bounds().Dx())
	}
	if rec.Header().Get("X-Render-Time") == "" {
		t.Fatal("missing timing header")
	}
}

func TestRenderEndpointRejectsBadInput(t *testing.T) {
	srv := &server{p: 2, volN: 32}
	for _, q := range []string{
		"/render?yaw=zzz",
		"/render?size=4",
		"/render?size=9999",
		"/render?method=bogus",
		"/render?dataset=nope&size=32",
	} {
		rec := httptest.NewRecorder()
		srv.render(rec, httptest.NewRequest("GET", q, nil))
		if rec.Code == 200 {
			t.Fatalf("%s accepted", q)
		}
	}
}

// TestMetricsEndpoint renders a frame through the full routing table, then
// scrapes /metrics and asserts every line is well-formed Prometheus text
// format and that the render left counters behind.
func TestMetricsEndpoint(t *testing.T) {
	srv := &server{p: 2, volN: 32, rec: telemetry.New()}
	mux := newMux(srv, false)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/render?dataset=engine&size=32&method=bs", nil))
	if rec.Code != 200 {
		t.Fatalf("render status %d: %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	body := rec.Body.String()
	comment := regexp.MustCompile(`^# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !comment.MatchString(line) && !sample.MatchString(line) {
			t.Fatalf("line does not parse as Prometheus text format: %q", line)
		}
	}
	for _, want := range []string{"rtcomp_msgs_total", "rtcomp_phase_seconds_total"} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %s after a render:\n%s", want, body)
		}
	}

	// The merged debug surface must answer on both mounts.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "rtcomp") {
		t.Fatalf("/debug/vars status %d", rec.Code)
	}
}

// TestMuxHardening: /metrics must be uncacheable, /debug/flight must
// answer, and the profiler endpoints must exist only when opted in.
func TestMuxHardening(t *testing.T) {
	srv := &server{p: 2, volN: 32, rec: telemetry.New()}
	mux := newMux(srv, false)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("/metrics Cache-Control = %q, want no-store", cc)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "flight recorder") {
		t.Fatalf("/debug/flight status %d: %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code == 200 {
		t.Fatalf("/debug/pprof/ answered %d with pprof disabled", rec.Code)
	}

	open := telemetry.Mux(srv.rec, true)
	rec = httptest.NewRecorder()
	open.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/ status %d with pprof enabled", rec.Code)
	}
}

// TestRenderSlotsShedLoad: with every slot taken the handler must answer
// 503 + Retry-After immediately instead of queueing, and release slots so
// the next request renders again.
func TestRenderSlotsShedLoad(t *testing.T) {
	srv := &server{p: 2, volN: 32, slots: make(chan struct{}, 1)}
	srv.slots <- struct{}{} // occupy the only slot

	rec := httptest.NewRecorder()
	srv.render(rec, httptest.NewRequest("GET", "/render?size=32&method=bs", nil))
	if rec.Code != 503 {
		t.Fatalf("busy server status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without a Retry-After header")
	}

	<-srv.slots // free the slot
	rec = httptest.NewRecorder()
	srv.render(rec, httptest.NewRequest("GET", "/render?size=32&method=bs", nil))
	if rec.Code != 200 {
		t.Fatalf("freed server status %d: %s", rec.Code, rec.Body.String())
	}
	if len(srv.slots) != 0 {
		t.Fatal("render did not release its slot")
	}
}

// TestRenderDeadline: a request whose context is already expired must get
// a timeout status, not a rendered frame.
func TestRenderDeadline(t *testing.T) {
	srv := &server{p: 2, volN: 32, reqTO: time.Nanosecond}
	rec := httptest.NewRecorder()
	srv.render(rec, httptest.NewRequest("GET", "/render?size=64&method=bs", nil))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline status %d, want %d", rec.Code, http.StatusGatewayTimeout)
	}
}

func TestIndexPage(t *testing.T) {
	srv := &server{p: 2, volN: 32}
	rec := httptest.NewRecorder()
	srv.index(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	if len(body) == 0 || rec.Header().Get("Content-Type") != "text/html; charset=utf-8" {
		t.Fatal("bad index response")
	}
	rec = httptest.NewRecorder()
	srv.index(rec, httptest.NewRequest("GET", "/nothing", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown path status %d", rec.Code)
	}
}
