package main

import (
	"context"
	"image/png"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"rtcomp/internal/admission"
	"rtcomp/internal/telemetry"
)

func TestRenderEndpoint(t *testing.T) {
	srv := &server{p: 2, volN: 32}

	req := httptest.NewRequest("GET", "/render?dataset=brain&yaw=0.4&pitch=0.1&size=64&method=2nrt:2", nil)
	rec := httptest.NewRecorder()
	srv.render(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/png" {
		t.Fatalf("content type %q", ct)
	}
	img, err := png.Decode(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 64 {
		t.Fatalf("decoded width %d", img.Bounds().Dx())
	}
	if rec.Header().Get("X-Render-Time") == "" {
		t.Fatal("missing timing header")
	}
}

func TestRenderEndpointRejectsBadInput(t *testing.T) {
	srv := &server{p: 2, volN: 32}
	for _, q := range []string{
		"/render?yaw=zzz",
		"/render?size=4",
		"/render?size=9999",
		"/render?method=bogus",
		"/render?dataset=nope&size=32",
	} {
		rec := httptest.NewRecorder()
		srv.render(rec, httptest.NewRequest("GET", q, nil))
		if rec.Code == 200 {
			t.Fatalf("%s accepted", q)
		}
	}
}

// TestMetricsEndpoint renders a frame through the full routing table, then
// scrapes /metrics and asserts every line is well-formed Prometheus text
// format and that the render left counters behind.
func TestMetricsEndpoint(t *testing.T) {
	srv := &server{p: 2, volN: 32, rec: telemetry.New()}
	mux := newMux(srv, false)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/render?dataset=engine&size=32&method=bs", nil))
	if rec.Code != 200 {
		t.Fatalf("render status %d: %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	body := rec.Body.String()
	comment := regexp.MustCompile(`^# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !comment.MatchString(line) && !sample.MatchString(line) {
			t.Fatalf("line does not parse as Prometheus text format: %q", line)
		}
	}
	for _, want := range []string{"rtcomp_msgs_total", "rtcomp_phase_seconds_total"} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %s after a render:\n%s", want, body)
		}
	}

	// The merged debug surface must answer on both mounts.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "rtcomp") {
		t.Fatalf("/debug/vars status %d", rec.Code)
	}
}

// TestMuxHardening: /metrics must be uncacheable, /debug/flight must
// answer, and the profiler endpoints must exist only when opted in.
func TestMuxHardening(t *testing.T) {
	srv := &server{p: 2, volN: 32, rec: telemetry.New()}
	mux := newMux(srv, false)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("/metrics Cache-Control = %q, want no-store", cc)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "flight recorder") {
		t.Fatalf("/debug/flight status %d: %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code == 200 {
		t.Fatalf("/debug/pprof/ answered %d with pprof disabled", rec.Code)
	}

	open := telemetry.Mux(srv.rec, true)
	rec = httptest.NewRecorder()
	open.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/ status %d with pprof enabled", rec.Code)
	}
}

// TestRenderSlotsShedLoad: with every slot taken and no queue the handler
// must answer 503 with a jittered Retry-After and an X-Request-ID instead
// of queueing, and release slots so the next request renders again.
func TestRenderSlotsShedLoad(t *testing.T) {
	srv := &server{p: 2, volN: 32}
	srv.adm = admission.New(admission.Config{Slots: 1, Queue: 0, Seed: 9}, nil)
	release, err := srv.adm.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	srv.render(rec, httptest.NewRequest("GET", "/render?size=32&method=bs", nil))
	if rec.Code != 503 {
		t.Fatalf("busy server status %d, want 503", rec.Code)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 || ra > 3 {
		t.Fatalf("Retry-After %q, want an integer in [1, 3]", rec.Header().Get("Retry-After"))
	}
	if rec.Header().Get("X-Request-ID") == "" {
		t.Fatal("shed response without an X-Request-ID")
	}

	release()
	rec = httptest.NewRecorder()
	srv.render(rec, httptest.NewRequest("GET", "/render?size=32&method=bs", nil))
	if rec.Code != 200 {
		t.Fatalf("freed server status %d: %s", rec.Code, rec.Body.String())
	}
	if active, queued := srv.adm.Depth(); active != 0 || queued != 0 {
		t.Fatalf("render did not release its slot: active=%d queued=%d", active, queued)
	}
}

// TestRequestIDEchoAndMint: a client-supplied X-Request-ID is echoed back
// verbatim; absent one, the server mints a unique id per request.
func TestRequestIDEchoAndMint(t *testing.T) {
	srv := &server{p: 2, volN: 32}

	req := httptest.NewRequest("GET", "/render?size=32&method=bs", nil)
	req.Header.Set("X-Request-ID", "client-abc-123")
	rec := httptest.NewRecorder()
	srv.render(rec, req)
	if got := rec.Header().Get("X-Request-ID"); got != "client-abc-123" {
		t.Fatalf("echoed id %q", got)
	}

	ids := map[string]bool{}
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		srv.render(rec, httptest.NewRequest("GET", "/render?size=32&method=bs", nil))
		id := rec.Header().Get("X-Request-ID")
		if id == "" {
			t.Fatal("no minted X-Request-ID")
		}
		if ids[id] {
			t.Fatalf("duplicate minted id %q", id)
		}
		ids[id] = true
	}
}

// TestDeadlinePropagation: a client deadline far too tight to render must
// time the request out; a malformed one is a 400.
func TestDeadlinePropagation(t *testing.T) {
	srv := &server{p: 2, volN: 32}
	rec := httptest.NewRecorder()
	srv.render(rec, httptest.NewRequest("GET", "/render?size=2048&method=bs&deadline_ms=1", nil))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("1ms client deadline status %d, want %d", rec.Code, http.StatusGatewayTimeout)
	}

	req := httptest.NewRequest("GET", "/render?size=2048&method=bs", nil)
	req.Header.Set("X-Deadline-Ms", "1")
	rec = httptest.NewRecorder()
	srv.render(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("1ms header deadline status %d, want %d", rec.Code, http.StatusGatewayTimeout)
	}

	rec = httptest.NewRecorder()
	srv.render(rec, httptest.NewRequest("GET", "/render?size=64&method=bs&deadline_ms=banana", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed deadline status %d, want 400", rec.Code)
	}
}

// TestDeadlineAwareShedEndToEnd: with the only slot held and the render
// estimate warmed, a request carrying a hopeless deadline is shed with a
// 503 rather than queued into certain failure.
func TestDeadlineAwareShedEndToEnd(t *testing.T) {
	srv := &server{p: 2, volN: 32}
	srv.adm = admission.New(admission.Config{Slots: 1, Queue: 8}, nil)
	for i := 0; i < 4; i++ {
		srv.adm.ObserveRender(200 * time.Millisecond)
	}
	release, err := srv.adm.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	rec := httptest.NewRecorder()
	srv.render(rec, httptest.NewRequest("GET", "/render?size=32&method=bs&deadline_ms=5", nil))
	if rec.Code != 503 {
		t.Fatalf("hopeless-deadline status %d, want 503 shed", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "deadline") {
		t.Fatalf("shed body %q does not name the deadline reason", rec.Body.String())
	}
}

// TestRenderDeadline: a request whose context is already expired must get
// a timeout status, not a rendered frame.
func TestRenderDeadline(t *testing.T) {
	srv := &server{p: 2, volN: 32, reqTO: time.Nanosecond}
	rec := httptest.NewRecorder()
	srv.render(rec, httptest.NewRequest("GET", "/render?size=64&method=bs", nil))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline status %d, want %d", rec.Code, http.StatusGatewayTimeout)
	}
}

func TestIndexPage(t *testing.T) {
	srv := &server{p: 2, volN: 32}
	rec := httptest.NewRecorder()
	srv.index(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	if len(body) == 0 || rec.Header().Get("Content-Type") != "text/html; charset=utf-8" {
		t.Fatal("bad index response")
	}
	rec = httptest.NewRecorder()
	srv.index(rec, httptest.NewRequest("GET", "/nothing", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown path status %d", rec.Code)
	}
}
