package main

import (
	"image/png"
	"net/http/httptest"
	"testing"
)

func TestRenderEndpoint(t *testing.T) {
	srv := &server{p: 2, volN: 32}

	req := httptest.NewRequest("GET", "/render?dataset=brain&yaw=0.4&pitch=0.1&size=64&method=2nrt:2", nil)
	rec := httptest.NewRecorder()
	srv.render(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/png" {
		t.Fatalf("content type %q", ct)
	}
	img, err := png.Decode(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 64 {
		t.Fatalf("decoded width %d", img.Bounds().Dx())
	}
	if rec.Header().Get("X-Render-Time") == "" {
		t.Fatal("missing timing header")
	}
}

func TestRenderEndpointRejectsBadInput(t *testing.T) {
	srv := &server{p: 2, volN: 32}
	for _, q := range []string{
		"/render?yaw=zzz",
		"/render?size=4",
		"/render?size=9999",
		"/render?method=bogus",
		"/render?dataset=nope&size=32",
	} {
		rec := httptest.NewRecorder()
		srv.render(rec, httptest.NewRequest("GET", q, nil))
		if rec.Code == 200 {
			t.Fatalf("%s accepted", q)
		}
	}
}

func TestIndexPage(t *testing.T) {
	srv := &server{p: 2, volN: 32}
	rec := httptest.NewRecorder()
	srv.index(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	if len(body) == 0 || rec.Header().Get("Content-Type") != "text/html; charset=utf-8" {
		t.Fatal("bad index response")
	}
	rec = httptest.NewRecorder()
	srv.index(rec, httptest.NewRequest("GET", "/nothing", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown path status %d", rec.Code)
	}
}
