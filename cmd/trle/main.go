// trle demonstrates the compression codecs on real rendered partial
// images: it renders one rank's partial image of a phantom, encodes it with
// RLE and TRLE, verifies the round trips, and prints the sizes — the
// per-transfer view of the paper's Section 3.
//
//	trle -dataset engine -p 8 -rank 3
//	trle -dataset head -p 32 -all          # table over all ranks
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"rtcomp/internal/codec"
	"rtcomp/internal/experiments"
	"rtcomp/internal/raster"
	"rtcomp/internal/shearwarp"
	"rtcomp/internal/stats"
)

func main() {
	var (
		dataset = flag.String("dataset", "engine", "phantom dataset")
		volN    = flag.Int("voln", 128, "phantom resolution")
		p       = flag.Int("p", 8, "processor count the image is partitioned for")
		rank    = flag.Int("rank", 0, "which rank's partial image to compress")
		size    = flag.Int("size", 512, "partial image edge in pixels")
		all     = flag.Bool("all", false, "print a table over every rank")
	)
	flag.Parse()

	o := experiments.DefaultOptions()
	o.Dataset = *dataset
	o.VolumeN = *volN
	o.Width, o.Height = *size, *size
	o.Camera = shearwarp.Camera{Yaw: 0.35, Pitch: 0.2}
	layers, err := experiments.Partials(o, *p)
	if err != nil {
		fatal(err)
	}

	report := func(r int, im *raster.Image) []string {
		raw := len(im.Pix)
		row := []string{fmt.Sprint(r), fmt.Sprintf("%.2f", im.BlankFraction()), stats.IBytes(int64(raw))}
		for _, name := range []string{"rle", "trle"} {
			c, _ := codec.ByName(name)
			enc := c.Encode(im.Pix)
			dec, err := c.Decode(enc, im.NPixels())
			if err != nil || !bytes.Equal(dec, im.Pix) {
				fatal(fmt.Errorf("%s round trip failed on rank %d: %v", name, r, err))
			}
			row = append(row, stats.IBytes(int64(len(enc))), fmt.Sprintf("%.2f", codec.Ratio(raw, len(enc))))
		}
		return row
	}

	t := &stats.Table{
		Title:   fmt.Sprintf("Codec comparison — %s, P=%d, %dx%d partial images", *dataset, *p, *size, *size),
		Headers: []string{"rank", "blank", "raw", "rle", "rle ratio", "trle", "trle ratio"},
	}
	if *all {
		for r, im := range layers {
			t.Add(report(r, im)...)
		}
	} else {
		if *rank < 0 || *rank >= len(layers) {
			fatal(fmt.Errorf("rank %d out of range [0,%d)", *rank, len(layers)))
		}
		t.Add(report(*rank, layers[*rank])...)
	}
	t.Note("round trips verified byte-for-byte; blank = fraction of transparent pixels")
	fmt.Println(t.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trle:", err)
	os.Exit(1)
}
